"""SLO-aware fault-tolerant routing over a fleet of inference replicas.

The serving plane of :mod:`repro.workloads.serving` runs one queue per
replica and loses everything in it when the replica dies.  This module
adds the production layer on top: a :class:`ResilientRouter` that owns
the fleet-wide request lifecycle and guarantees every submitted request
terminates *exactly once* — completed, shed, or failed — whatever the
chaos schedule does underneath.  The mechanisms are the standard SRE
toolkit:

- **deadlines**: every request carries an absolute SLO deadline;
- **retries** with exponential backoff + seeded jitter, capped by a
  token-bucket *retry budget* (a failing fleet must not DDoS itself);
- **hedging**: once enough attempt latencies are observed, a duplicate
  attempt fires after a streaming-quantile (P²) delay — the classic
  tail-tolerant trick — bounded by a hedge-rate cap;
- **circuit breakers**: consecutive attempt failures open a per-replica
  breaker for a cooldown, steering traffic away from a sick replica;
- **failover routing**: attempts go to the least-loaded available
  replica not already tried by the request; replicas whose admission is
  stalled (a reconfiguration drain or chaos ``stall_until`` window) are
  used only as a last resort;
- **admission control**: requests whose deadline is provably
  infeasible given current queue depths are shed at the door instead
  of queueing to death.

The router is callback-driven — no per-request process, no retained
per-request state after termination — so it composes with streaming
mode's bounded-memory contract, and every decision consumes either no
randomness or draws from the router's own seeded generator, so runs
are bit-deterministic under a fixed seed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.sim.core import Environment, Event
from repro.telemetry.resilience import ResilienceStats
from repro.telemetry.streaming import P2Quantile
from repro.workloads.serving import InferenceServer

__all__ = ["CircuitBreaker", "Replica", "ResilientRouter", "SLOPolicy",
           "ServedRequest"]

_served_ids = itertools.count()


@dataclass(frozen=True)
class SLOPolicy:
    """The knobs of the serving-plane fault tolerance."""

    #: Per-request latency SLO (absolute deadline = arrival + this).
    deadline_seconds: float = 60.0
    #: Total dispatches a request may consume (first try included).
    max_attempts: int = 3
    #: Exponential backoff: ``min(cap, base * 2**(attempt-1))`` seconds.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Jitter fraction: the backoff is stretched by ``U[0, jitter]``.
    backoff_jitter: float = 0.5
    #: Retry budget token bucket: each completion earns ``rate`` tokens
    #: (capped); each retry spends one.  Exhausted budget = no retries.
    retry_budget_rate: float = 0.2
    retry_budget_initial: float = 20.0
    retry_budget_cap: float = 200.0
    #: Hedge a request once its first attempt outlives this quantile of
    #: observed attempt latencies (needs ``hedge_min_samples`` first).
    #: ``None`` disables hedging.
    hedge_quantile: Optional[float] = 0.95
    hedge_min_samples: int = 64
    #: At most this fraction of offered requests may hedge.
    hedge_max_fraction: float = 0.05
    #: Shed requests whose deadline is infeasible at admission time.
    admission_control: bool = True
    #: Consecutive attempt failures that open a replica's breaker, and
    #: how long it stays open.
    breaker_failures: int = 3
    breaker_cooldown_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff parameters must be non-negative")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")
        if self.retry_budget_rate < 0 or self.retry_budget_initial < 0 \
                or self.retry_budget_cap < 0:
            raise ValueError("retry budget parameters must be non-negative")
        if self.hedge_quantile is not None \
                and not 0.0 < self.hedge_quantile < 1.0:
            raise ValueError("hedge_quantile must be in (0, 1) or None")
        if self.hedge_min_samples < 5:
            raise ValueError("hedge_min_samples must be at least 5")
        if not 0.0 <= self.hedge_max_fraction <= 1.0:
            raise ValueError("hedge_max_fraction must be in [0, 1]")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be at least 1")
        if self.breaker_cooldown_seconds < 0:
            raise ValueError("breaker_cooldown_seconds must be non-negative")


class CircuitBreaker:
    """Consecutive-failure breaker with a cooldown half-open phase.

    ``threshold`` consecutive failures open the breaker until
    ``now + cooldown``.  After the cooldown the breaker is *half-open*:
    traffic may probe the replica, one more failure re-opens it
    immediately (the consecutive counter is still saturated), and one
    success closes it fully.
    """

    __slots__ = ("threshold", "cooldown", "consecutive_failures",
                 "open_until", "opens")

    def __init__(self, threshold: int, cooldown: float):
        self.threshold = threshold
        self.cooldown = cooldown
        self.consecutive_failures = 0
        self.open_until = 0.0
        self.opens = 0

    def available(self, now: float) -> bool:
        return now >= self.open_until

    def state(self, now: float) -> str:
        """``"open"`` (cooling down), ``"half-open"`` (cooldown elapsed
        with the failure counter still saturated), or ``"closed"``."""
        if not self.available(now):
            return "open"
        if self.consecutive_failures >= self.threshold:
            return "half-open"
        return "closed"

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> bool:
        """Record a failure; True when this newly opened the breaker."""
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.threshold:
            was_open = not self.available(now)
            self.open_until = now + self.cooldown
            if not was_open:
                self.opens += 1
                return True
        return False


class Replica:
    """One routing slot: a server that may crash and be replaced.

    The :class:`Replica` object is the *stable identity* the router
    holds; ``server`` is swapped when the fleet respawns a crashed
    replica, while the breaker and counters carry across incarnations.
    """

    __slots__ = ("index", "server", "breaker", "outstanding",
                 "incarnations")

    def __init__(self, index: int, server: InferenceServer,
                 policy: SLOPolicy):
        self.index = index
        self.server = server
        self.breaker = CircuitBreaker(policy.breaker_failures,
                                      policy.breaker_cooldown_seconds)
        #: Router-dispatched attempts currently in flight here.
        self.outstanding = 0
        self.incarnations = 1

    @property
    def alive(self) -> bool:
        return self.server is not None and self.server.alive

    @property
    def stalled(self) -> bool:
        """Alive but admitting no batches (reconfig drain or stall)."""
        return self.alive and self.server.stalled

    @property
    def depth(self) -> int:
        return self.server.queue_depth if self.alive else 0

    def replace(self, server: InferenceServer) -> None:
        """Install a respawned server (the old one has crashed)."""
        self.server = server
        self.incarnations += 1


@dataclass(slots=True)
class ServedRequest:
    """One request's fleet-level lifecycle.

    ``done`` always *succeeds* (with this object) on any terminal
    outcome — ``outcome`` distinguishes ``"ok"``/``"shed"``/
    ``"failed"`` — so open-loop clients can await completion without
    special-casing failure.
    """

    n_tokens: int
    arrival_time: float
    deadline: float
    done: Event
    rid: int = field(default_factory=lambda: next(_served_ids))
    outcome: str = "pending"
    finish_time: Optional[float] = None
    #: Dispatches consumed so far.
    attempts: int = 0
    #: Attempts currently in flight (hedges make this 2).
    in_flight: int = 0
    #: Replica indexes already tried (failover avoids them).
    tried: list = field(default_factory=list)
    hedged: bool = False

    @property
    def latency(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time


class ResilientRouter:
    """Routes requests across replicas with retries, hedging, and shed.

    Duck-type compatible with :class:`InferenceServer` from a client's
    point of view (``submit(n_tokens)`` returning an object with a
    ``done`` event), so :class:`~repro.workloads.serving.OpenLoopClient`
    drives it unmodified.

    ``est_service_seconds`` seeds the admission-control service-time
    estimate; once attempts complete, a running mean of observed
    attempt latencies takes over.
    """

    def __init__(self, env: Environment, replicas: list[Replica],
                 policy: Optional[SLOPolicy] = None,
                 stats: Optional[ResilienceStats] = None,
                 seed: int = 0,
                 est_service_seconds: Optional[float] = None,
                 on_resolve: Optional[
                     Callable[[ServedRequest], None]] = None):
        if not replicas:
            raise ValueError("a router needs at least one replica")
        self.env = env
        self.replicas = replicas
        self.policy = policy if policy is not None else SLOPolicy()
        self.stats = stats if stats is not None else ResilienceStats()
        self.on_resolve = on_resolve
        #: Jitter-only generator: the single source of randomness.
        self.rng = np.random.default_rng(seed)
        self._budget = self.policy.retry_budget_initial
        self._hedge_q = (P2Quantile(self.policy.hedge_quantile)
                         if self.policy.hedge_quantile is not None else None)
        self._est_prior = est_service_seconds
        self._lat_sum = 0.0
        self._lat_count = 0

    # -- client API ---------------------------------------------------------
    def submit(self, n_tokens: int = 20) -> ServedRequest:
        """Admit (or shed) a request; ``done`` fires on termination."""
        if n_tokens <= 0:
            raise ValueError("n_tokens must be positive")
        env = self.env
        request = ServedRequest(
            n_tokens=n_tokens,
            arrival_time=env.now,
            deadline=env.now + self.policy.deadline_seconds,
            done=env.event(),
        )
        self.stats.offered += 1
        if self.policy.admission_control and self._infeasible(request):
            self._resolve(request, "shed")
            return request
        replica = self._pick(request)
        if replica is None:
            self._resolve(request, "failed")
            return request
        self._dispatch(request, replica)
        self._arm_hedge(request)
        return request

    @property
    def retry_budget(self) -> float:
        return self._budget

    # -- admission control --------------------------------------------------
    def _service_estimate(self) -> Optional[float]:
        if self._lat_count > 0:
            return self._lat_sum / self._lat_count
        return self._est_prior

    def _infeasible(self, request: ServedRequest) -> bool:
        est = self._service_estimate()
        if est is None:
            return False  # nothing observed yet: admit optimistically
        depths = [r.depth for r in self.replicas
                  if r.alive and r.breaker.available(self.env.now)
                  and not r.stalled]
        if not depths:
            return False  # nobody available: let dispatch decide
        # The request runs behind min(depth) queued requests, each
        # costing ~est seconds end to end at batch size 1.
        projected = self.env.now + est * (min(depths) + 1)
        return projected > request.deadline

    # -- routing ------------------------------------------------------------
    def _pick(self, request: ServedRequest) -> Optional[Replica]:
        now = self.env.now
        tried = set(request.tried)
        fresh = None
        fallback = None
        stalled = None
        for replica in self.replicas:
            if not replica.alive:
                continue
            if not replica.breaker.available(now):
                continue
            key = (replica.depth, replica.index)
            if replica.stalled:
                # Deprioritise: a stalled replica admits no batches, so
                # attempts (and especially hedges) sent there just queue
                # behind the reconfiguration and blow the deadline.
                if stalled is None or key < stalled[0]:
                    stalled = (key, replica)
                continue
            if replica.index not in tried:
                if fresh is None or key < fresh[0]:
                    fresh = (key, replica)
            if fallback is None or key < fallback[0]:
                fallback = (key, replica)
        # Prefer a replica the request has not visited (failover);
        # with every candidate already tried, reuse the least loaded.
        if fresh is not None:
            return fresh[1]
        if fallback is not None:
            return fallback[1]
        if stalled is not None:
            # Everyone admitting work is dead or tried: queueing behind
            # a stall still beats failing the request outright.
            return stalled[1]
        # Every breaker open (or everyone dead): ignore breakers rather
        # than failing outright — a sick replica beats none.
        best = None
        for replica in self.replicas:
            if not replica.alive:
                continue
            key = (replica.depth, replica.index)
            if best is None or key < best[0]:
                best = (key, replica)
        return best[1] if best is not None else None

    def _dispatch(self, request: ServedRequest, replica: Replica,
                  is_hedge: bool = False) -> None:
        env = self.env
        request.attempts += 1
        request.in_flight += 1
        request.tried.append(replica.index)
        self.stats.attempts += 1
        replica.outstanding += 1
        started = env.now
        try:
            attempt = replica.server.submit(request.n_tokens)
        except RuntimeError as exc:
            # The replica crashed between pick and submit.
            self._attempt_finished(None, request, replica, started,
                                   is_hedge, exc)
            return
        done = attempt.done
        # The router takes responsibility for attempt failures here —
        # pre-defused so a failed kernel never escalates to the kernel
        # loop even when the callback resolves the request first.
        done._defused = True
        done.callbacks.append(
            lambda ev, req=request, rep=replica, t0=started, h=is_hedge:
            self._attempt_finished(ev, req, rep, t0, h,
                                   None if ev.ok else ev.value))

    # -- attempt completion -------------------------------------------------
    def _attempt_finished(self, ev: Optional[Event],
                          request: ServedRequest, replica: Replica,
                          started: float, is_hedge: bool,
                          error: Optional[BaseException]) -> None:
        env = self.env
        replica.outstanding -= 1
        request.in_flight -= 1
        if error is None:
            elapsed = env.now - started
            replica.breaker.record_success()
            if self._hedge_q is not None:
                self._hedge_q.add(elapsed)
            self._lat_sum += elapsed
            self._lat_count += 1
            self._budget = min(self.policy.retry_budget_cap,
                               self._budget + self.policy.retry_budget_rate)
            if request.outcome != "pending":
                self.stats.wasted_attempts += 1
                return
            if is_hedge:
                self.stats.hedge_wins += 1
            request.finish_time = env.now
            in_slo = env.now <= request.deadline
            self.stats.record_completion(env.now - request.arrival_time,
                                         in_slo)
            self._resolve(request, "ok")
            return
        self.stats.attempt_failures += 1
        if replica.breaker.record_failure(env.now):
            self.stats.breaker_opens += 1
        if request.outcome != "pending":
            self.stats.wasted_attempts += 1
            return
        if request.in_flight > 0:
            return  # a hedge twin is still running; let it decide
        self._retry_or_fail(request)

    def _retry_or_fail(self, request: ServedRequest) -> None:
        env = self.env
        policy = self.policy
        if request.attempts >= policy.max_attempts:
            self._resolve(request, "failed")
            return
        if self._budget < 1.0:
            self._resolve(request, "failed")
            return
        backoff = min(policy.backoff_cap,
                      policy.backoff_base * 2.0 ** (request.attempts - 1))
        if policy.backoff_jitter > 0:
            backoff *= 1.0 + policy.backoff_jitter * float(self.rng.random())
        if env.now + backoff > request.deadline:
            # Deadline-infeasible retry: spend nothing, fail now.
            self._resolve(request, "failed")
            return
        self._budget -= 1.0
        self.stats.retries += 1
        env.schedule_callback(backoff,
                              lambda: self._redispatch(request))

    def _redispatch(self, request: ServedRequest) -> None:
        if request.outcome != "pending":
            return
        if self.env.now > request.deadline:
            self._resolve(request, "failed")
            return
        replica = self._pick(request)
        if replica is None:
            self._resolve(request, "failed")
            return
        self._dispatch(request, replica)

    # -- hedging ------------------------------------------------------------
    def _arm_hedge(self, request: ServedRequest) -> None:
        policy = self.policy
        q = self._hedge_q
        if q is None or q.count < policy.hedge_min_samples:
            return
        if self.stats.hedges >= policy.hedge_max_fraction * \
                self.stats.offered:
            return
        delay = q.value
        if self.env.now + delay > request.deadline:
            return
        self.env.schedule_callback(delay,
                                   lambda: self._fire_hedge(request))

    def _fire_hedge(self, request: ServedRequest) -> None:
        if request.outcome != "pending" or request.hedged:
            return
        if request.in_flight == 0:
            return  # between attempts: the retry path owns it
        # Re-check the rate cap: many timers may have been armed while
        # the hedge counter was still low.
        if self.stats.hedges >= self.policy.hedge_max_fraction * \
                self.stats.offered:
            return
        replica = self._pick(request)
        if replica is None:
            return
        request.hedged = True
        self.stats.hedges += 1
        self._dispatch(request, replica, is_hedge=True)

    # -- termination --------------------------------------------------------
    def _resolve(self, request: ServedRequest, outcome: str) -> None:
        request.outcome = outcome
        if outcome == "shed":
            self.stats.shed += 1
        elif outcome == "failed":
            self.stats.failed += 1
        if self.on_resolve is not None:
            self.on_resolve(request)
        request.done.succeed(request)
