"""Cluster placement data model: demands, segments, GPUs, placements.

The ParvaGPU framing: a *GPU segment* is the unit the cluster hands a
function — either one MIG instance (so many compute/memory slices of a
MIG-capable device) or one MPS share (a percentage cap plus a model-
weight reservation) — and a *placement* is an assignment of segments to
concrete GPUs such that no device is over-committed in any dimension:
compute slices and memory slices for MIG, summed percentage caps and
HBM bytes for MPS.  Everything here is pure data + invariant checking;
the sizing lives in :mod:`repro.cluster.oracle` and the packing in
:mod:`repro.cluster.packing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.gpu.specs import GPUSpec, get_spec
from repro.partition.autoscaler import scaled_percentages

__all__ = [
    "ClusterGpu",
    "ClusterPlacement",
    "FunctionDemand",
    "GpuSegment",
    "LatencyCurve",
    "build_fleet",
]

#: Float slack for capacity-vs-rate comparisons (rates are sums of
#: per-segment capacities, so exact equality is one ulp away).
EPS = 1e-9


@dataclass(frozen=True)
class LatencyCurve:
    """The saturating latency law ``T(s) = work / min(s, saturation) +
    serial`` — the same shape :class:`~repro.partition.predictor.
    RuntimePredictor` fits from profiles, kept frozen/hashable here so a
    :class:`FunctionDemand` can key oracle caches."""

    #: Parallelisable seconds at one SM.
    work: float
    #: Serial floor, seconds (the latency at infinite SMs).
    serial: float
    #: SMs past which more compute stops helping (Fig. 2's plateau).
    saturation: int

    def __post_init__(self) -> None:
        if self.work < 0 or self.serial < 0:
            raise ValueError("work and serial must be non-negative")
        if self.saturation < 1:
            raise ValueError("saturation must be at least 1")

    def __call__(self, sms: int) -> float:
        if sms < 1:
            raise ValueError("sms must be at least 1")
        return self.work / min(sms, self.saturation) + self.serial


@dataclass(frozen=True)
class FunctionDemand:
    """One function's ask: an SLO, a latency curve, a rate forecast."""

    name: str
    #: Latency SLO, seconds.
    slo_seconds: float
    #: Forecast arrival rate, requests per second (0 = keep warm only).
    rate_rps: float
    #: Isolated latency vs SMs (frozen so demands are hashable).
    curve: LatencyCurve
    #: GPU-resident weight footprint each instance must hold, bytes.
    model_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive")
        if self.rate_rps < 0:
            raise ValueError("rate_rps must be non-negative")
        if self.model_bytes < 0:
            raise ValueError("model_bytes must be non-negative")


@dataclass(frozen=True)
class GpuSegment:
    """One slice of one GPU granted to one function instance."""

    function: str
    #: ``"mig"`` or ``"mps"``.
    kind: str
    #: MIG profile name (``"2g.20gb"``) or MPS share tag (``"mps:25"``).
    geometry: str
    #: SMs this segment delivers to the instance.
    sms: int
    #: MIG footprint (both 0 for MPS segments).
    compute_slices: int
    memory_slices: int
    #: MPS percentage cap (0 for MIG segments).
    mps_percentage: int
    #: HBM reserved for the instance (profile capacity for MIG, the
    #: model weights for MPS).
    memory_bytes: float
    #: Sustained request rate one instance absorbs inside the SLO.
    capacity_rps: float
    #: Isolated latency at ``sms``, seconds.
    latency_seconds: float

    def __post_init__(self) -> None:
        if self.kind not in ("mig", "mps"):
            raise ValueError(f"unknown segment kind {self.kind!r}")
        if self.kind == "mig" and self.compute_slices < 1:
            raise ValueError("MIG segments need at least one compute slice")
        if self.kind == "mps" and not 1 <= self.mps_percentage <= 100:
            raise ValueError("MPS percentage must be in [1, 100]")

    def payload(self) -> dict:
        """JSON-stable description (for digests and reports)."""
        return {
            "function": self.function,
            "kind": self.kind,
            "geometry": self.geometry,
            "sms": self.sms,
            "compute_slices": self.compute_slices,
            "memory_slices": self.memory_slices,
            "mps_percentage": self.mps_percentage,
            "memory_bytes": self.memory_bytes,
            "capacity_rps": self.capacity_rps,
            "latency_seconds": self.latency_seconds,
        }


class ClusterGpu:
    """One simulated device plus the segments currently packed on it.

    A MIG-capable device runs in MIG mode and hosts MIG segments only;
    a non-MIG device hosts MPS segments only — mixing isolation domains
    on one physical GPU is exactly what PR 4's fault model penalises.
    Occupancy counters are maintained incrementally so the packer's
    inner ``fits`` loop is O(1).
    """

    def __init__(self, gpu_id: str, spec: GPUSpec):
        self.gpu_id = gpu_id
        self.spec = spec
        self.segments: list[GpuSegment] = []
        self.used_compute_slices = 0
        self.used_memory_slices = 0
        self.used_percentage = 0
        self.used_memory_bytes = 0.0

    def __repr__(self) -> str:
        return (f"ClusterGpu({self.gpu_id}, {len(self.segments)} segments, "
                f"{self.compute_fraction():.2f} full)")

    @property
    def used(self) -> bool:
        return bool(self.segments)

    def fits(self, segment: GpuSegment) -> bool:
        """Whether ``segment`` can land here without over-commitment."""
        if segment.kind == "mig":
            if not self.spec.mig_capable:
                return False
            return (self.used_compute_slices + segment.compute_slices
                    <= self.spec.mig_compute_slices
                    and self.used_memory_slices + segment.memory_slices
                    <= self.spec.mig_memory_slices)
        if self.spec.mig_capable:
            return False
        return (self.used_percentage + segment.mps_percentage <= 100
                and self.used_memory_bytes + segment.memory_bytes
                <= self.spec.memory_bytes + EPS)

    def place(self, segment: GpuSegment) -> None:
        if not self.fits(segment):
            raise ValueError(f"{segment.geometry} does not fit {self.gpu_id}")
        self.segments.append(segment)
        self.used_compute_slices += segment.compute_slices
        self.used_memory_slices += segment.memory_slices
        self.used_percentage += segment.mps_percentage
        self.used_memory_bytes += segment.memory_bytes

    def remove(self, segment: GpuSegment) -> None:
        self.segments.remove(segment)  # ValueError if absent — intended
        self.used_compute_slices -= segment.compute_slices
        self.used_memory_slices -= segment.memory_slices
        self.used_percentage -= segment.mps_percentage
        self.used_memory_bytes -= segment.memory_bytes

    def compute_fraction(self) -> float:
        """Occupied fraction of the device's compute (packing order key)."""
        if self.spec.mig_capable:
            return self.used_compute_slices / self.spec.mig_compute_slices
        return self.used_percentage / 100.0

    def payload(self) -> dict:
        return {
            "gpu_id": self.gpu_id,
            "spec": self.spec.name,
            "segments": [s.payload() for s in sorted(
                self.segments, key=lambda s: (s.function, s.geometry))],
        }


def build_fleet(inventory: Sequence[tuple[GPUSpec | str, int]]
                ) -> list[ClusterGpu]:
    """Materialise ``[(spec, count), ...]`` into addressable devices."""
    gpus: list[ClusterGpu] = []
    for spec, count in inventory:
        if isinstance(spec, str):
            spec = get_spec(spec)
        if count < 0:
            raise ValueError("GPU counts must be non-negative")
        for i in range(count):
            gpus.append(ClusterGpu(f"{spec.name}/{i:04d}", spec))
    return gpus


class ClusterPlacement:
    """An assignment of segments to GPUs, with invariant checking."""

    def __init__(self, gpus: Sequence[ClusterGpu],
                 demands: Mapping[str, FunctionDemand]):
        self.gpus = list(gpus)
        self.demands = dict(demands)
        #: Functions the oracle/packer refused, name -> reason.
        self.rejected: dict[str, str] = {}

    # -- queries -------------------------------------------------------------
    def segments_of(self, name: str) -> list[tuple[ClusterGpu, GpuSegment]]:
        return [(gpu, seg) for gpu in self.gpus
                for seg in gpu.segments if seg.function == name]

    def capacity_of(self, name: str) -> float:
        return sum(seg.capacity_rps for _, seg in self.segments_of(name))

    @property
    def gpus_used(self) -> int:
        return sum(1 for gpu in self.gpus if gpu.used)

    def fragmentation(self) -> dict:
        """Stranded space on *used* devices (what repacking reclaims)."""
        free_slices = 0
        free_pct = 0
        for gpu in self.gpus:
            if not gpu.used:
                continue
            if gpu.spec.mig_capable:
                free_slices += (gpu.spec.mig_compute_slices
                                - gpu.used_compute_slices)
            else:
                free_pct += 100 - gpu.used_percentage
        return {"free_compute_slices": free_slices,
                "free_mps_percentage": free_pct}

    # -- invariants ----------------------------------------------------------
    def validate(self) -> None:
        """Raise ``AssertionError`` on any violated packing invariant."""
        placed = {seg.function for gpu in self.gpus for seg in gpu.segments}
        overlap = placed & set(self.rejected)
        assert not overlap, f"rejected functions still placed: {overlap}"
        unknown = placed - set(self.demands)
        assert not unknown, f"segments for unknown functions: {unknown}"
        for gpu in self.gpus:
            c = sum(s.compute_slices for s in gpu.segments)
            m = sum(s.memory_slices for s in gpu.segments)
            p = sum(s.mps_percentage for s in gpu.segments)
            b = sum(s.memory_bytes for s in gpu.segments)
            assert c == gpu.used_compute_slices, gpu.gpu_id
            assert m == gpu.used_memory_slices, gpu.gpu_id
            assert p == gpu.used_percentage, gpu.gpu_id
            assert abs(b - gpu.used_memory_bytes) < 1.0, gpu.gpu_id
            for seg in gpu.segments:
                assert (seg.kind == "mig") == gpu.spec.mig_capable, \
                    f"{seg.geometry} on {gpu.gpu_id}"
            if gpu.spec.mig_capable:
                assert c <= gpu.spec.mig_compute_slices, \
                    f"{gpu.gpu_id} over-committed: {c} compute slices"
                assert m <= gpu.spec.mig_memory_slices, \
                    f"{gpu.gpu_id} over-committed: {m} memory slices"
            else:
                assert p <= 100, \
                    f"{gpu.gpu_id} over-committed: {p}% summed MPS caps"
                assert b <= gpu.spec.memory_bytes + 1.0, \
                    f"{gpu.gpu_id} over-committed: {b:.0f} bytes"
        for name in placed:
            demand = self.demands[name]
            assert self.capacity_of(name) + EPS >= demand.rate_rps, \
                f"{name} under-provisioned"
            for _, seg in self.segments_of(name):
                assert seg.latency_seconds <= demand.slo_seconds + EPS, \
                    f"{name} segment {seg.geometry} violates its SLO"

    # -- derived artefacts ---------------------------------------------------
    def mps_caps(self) -> dict[str, dict]:
        """Per-GPU MPS caps for every shared device, via the repaired
        :func:`~repro.partition.autoscaler.scaled_percentages` (so the
        replica-weighted sum is provably <= 100 on every GPU)."""
        caps: dict[str, dict] = {}
        for gpu in self.gpus:
            shares = [s for s in gpu.segments if s.kind == "mps"]
            if not shares:
                continue
            needed = {f"{seg.function}/{i}": seg.sms
                      for i, seg in enumerate(sorted(
                          shares, key=lambda s: (s.function, -s.sms)))}
            pcts = scaled_percentages(gpu.spec, needed, expand=True)
            caps[gpu.gpu_id] = {
                "caps": pcts,
                "weighted_sum": sum(pcts.values()),
            }
        return caps

    def score(self) -> dict:
        """Analytic contest score: GPUs used + in-SLO served fraction.

        Served-in-SLO rate for a placed function is ``min(rate,
        capacity)`` — every placed segment already meets the SLO by
        construction (``validate`` checks it), so the only way to miss
        is insufficient capacity.  Rejected functions serve nothing and
        their whole rate counts against the placement, so a packer
        cannot reject its way to a smaller fleet.
        """
        offered = sum(d.rate_rps for d in self.demands.values())
        served = 0.0
        for name, demand in self.demands.items():
            if name in self.rejected:
                continue
            served += min(demand.rate_rps, self.capacity_of(name))
        return {
            "gpus_used": self.gpus_used,
            "offered_rps": offered,
            "served_in_slo_rps": served,
            "in_slo_fraction": served / offered if offered else 1.0,
            "rejected": sorted(self.rejected),
            "fragmentation": self.fragmentation(),
        }

    def payload(self) -> dict:
        """Canonical JSON-stable payload (twin-run identity gate)."""
        return {
            "gpus": [gpu.payload() for gpu in self.gpus if gpu.used],
            "rejected": dict(sorted(self.rejected.items())),
            "score": self.score(),
        }
