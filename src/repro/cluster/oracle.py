"""MISO-style sizing oracle: (SLO, rate) -> candidate slice geometries.

MISO's insight, transplanted: profile (here: evaluate the latency law)
under fractional shares to predict the best MIG slice *before* placing
the function.  For each GPU model the oracle enumerates the deployable
geometries — the MIG profile table for MIG-capable devices, an MPS
percentage grid for the rest — keeps those that hold the function's SLO
and model weights, prunes everything past the latency knee (reusing
:class:`~repro.partition.rightsizing.RightSizer`), and derives each
geometry's sustained per-instance capacity from the stability ceiling
(``rate * latency <= ceiling``, the same arithmetic as
:func:`~repro.partition.autoscaler.required_sms_for`).  Functions whose
SLO no whole device can meet — or whose weights no slice can hold — get
an explicit typed rejection instead of a silent whole-GPU fallback.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.gpu.specs import GPUSpec
from repro.partition.autoscaler import required_sms_for
from repro.partition.rightsizing import PlacementNeed, RightSizer
from repro.cluster.model import ClusterGpu, FunctionDemand, GpuSegment

__all__ = ["FunctionPlan", "SizingOracle", "SliceCandidate"]

#: Probe rate that makes the utilisation ceiling inactive, so
#: :func:`required_sms_for` answers the pure-SLO question "smallest SM
#: count whose latency meets the SLO" (and whether one exists at all).
_SLO_PROBE_RPS = 1e-12

EPS = 1e-9


@dataclass(frozen=True)
class SliceCandidate:
    """One deployable geometry for one function on one GPU model."""

    spec_name: str
    #: ``"mig"`` or ``"mps"``.
    kind: str
    #: MIG profile name or ``"mps:<pct>"``.
    geometry: str
    sms: int
    compute_slices: int
    memory_slices: int
    mps_percentage: int
    #: HBM one instance reserves, bytes.
    memory_bytes: float
    latency_seconds: float
    #: Sustained rate one instance absorbs inside the SLO, rps.
    capacity_rps: float
    #: Fraction of one device an instance occupies (packing cost).
    gpu_fraction: float

    def segment(self, function: str) -> GpuSegment:
        return GpuSegment(
            function=function,
            kind=self.kind,
            geometry=self.geometry,
            sms=self.sms,
            compute_slices=self.compute_slices,
            memory_slices=self.memory_slices,
            mps_percentage=self.mps_percentage,
            memory_bytes=self.memory_bytes,
            capacity_rps=self.capacity_rps,
            latency_seconds=self.latency_seconds,
        )


@dataclass(frozen=True)
class FunctionPlan:
    """The oracle's verdict for one function across the whole catalog."""

    function: str
    feasible: bool
    #: Why the function was refused ("" when feasible).
    reason: str
    #: Typed placement verdict (None only when infeasible).
    placement: Optional[PlacementNeed]
    #: Uniform-slice choice on the preferred GPU model.
    candidate: Optional[SliceCandidate]
    #: Best candidate per GPU model, preferred first (spill-over order
    #: when the preferred model's devices run out).
    alternatives: tuple[SliceCandidate, ...]
    #: Instances of ``candidate`` needed to absorb the forecast rate.
    replicas: int
    #: ``replicas * gpu_fraction`` — whole-GPU equivalents consumed.
    cost: float


class SizingOracle:
    """Maps :class:`FunctionDemand` to slice geometries per GPU model."""

    def __init__(self, specs: Sequence[GPUSpec],
                 utilization_ceiling: float = 0.8,
                 mps_step: int = 5,
                 knee_tolerance: float = 0.05):
        if not specs:
            raise ValueError("need at least one GPU spec")
        if not 0 < utilization_ceiling <= 1:
            raise ValueError("utilization_ceiling must be in (0, 1]")
        if not 1 <= mps_step <= 100:
            raise ValueError("mps_step must be in [1, 100]")
        # De-duplicate by name, preserving caller preference order.
        seen: dict[str, GPUSpec] = {}
        for spec in specs:
            seen.setdefault(spec.name, spec)
        self.specs = tuple(seen.values())
        self.utilization_ceiling = utilization_ceiling
        self.mps_step = mps_step
        self.knee_tolerance = knee_tolerance
        self._candidates: dict[tuple, tuple[SliceCandidate, ...]] = {}
        self._plans: dict[FunctionDemand, FunctionPlan] = {}

    # -- candidate enumeration ----------------------------------------------
    def candidates(self, demand: FunctionDemand,
                   spec: GPUSpec) -> tuple[SliceCandidate, ...]:
        """SLO-holding, memory-fitting, knee-pruned geometries on
        ``spec``, smallest footprint first (empty when none work)."""
        key = (demand, spec.name)
        if key not in self._candidates:
            self._candidates[key] = self._enumerate(demand, spec)
        return self._candidates[key]

    def _enumerate(self, demand: FunctionDemand,
                   spec: GPUSpec) -> tuple[SliceCandidate, ...]:
        sizing = required_sms_for(spec, demand.curve, demand.slo_seconds,
                                  _SLO_PROBE_RPS, self.utilization_ceiling)
        if not sizing.feasible:
            return ()
        min_sms = int(sizing)
        raw: list[tuple] = []  # (footprint sort key, candidate fields)
        if spec.mig_capable:
            for profile in spec.mig_profiles:
                sms = profile.sm_count(spec)
                raw.append((sms, profile.name, profile.compute_slices,
                            profile.memory_slices, 0, profile.memory_bytes,
                            profile.compute_slices
                            / spec.mig_compute_slices, "mig"))
        else:
            if demand.model_bytes > spec.memory_bytes + EPS:
                return ()  # the weights do not fit the device at all
            for pct in range(self.mps_step, 101, self.mps_step):
                sms = max(1, spec.sms * pct // 100)
                raw.append((sms, f"mps:{pct}", 0, 0, pct,
                            demand.model_bytes, pct / 100.0, "mps"))
        # The knee caps useful slice size: past it, extra SMs buy
        # latency inside the RightSizer tolerance but cost real GPU.
        sizer = RightSizer(spec, tolerance=self.knee_tolerance)
        grid = sorted({sms for sms, *_ in raw} | {spec.sms})
        knee_sms = sizer.knee(sizer.profile_curve(demand.curve, grid))
        ceiling_sms = max(min_sms, knee_sms)
        out = []
        for (sms, geometry, cslices, mslices, pct,
             memory, fraction, kind) in raw:
            if sms < min_sms:
                continue  # latency misses the SLO
            if demand.model_bytes > memory + EPS:
                continue  # weights do not fit the slice
            if sms > ceiling_sms and any(
                    r[0] >= ceiling_sms and r[0] < sms
                    and demand.model_bytes <= r[5] + EPS for r in raw):
                continue  # a smaller adequate geometry exists past the knee
            latency = demand.curve(sms)
            out.append(SliceCandidate(
                spec_name=spec.name, kind=kind, geometry=geometry,
                sms=sms, compute_slices=cslices, memory_slices=mslices,
                mps_percentage=pct, memory_bytes=memory,
                latency_seconds=latency,
                capacity_rps=self.utilization_ceiling / latency,
                gpu_fraction=fraction))
        out.sort(key=lambda c: (c.gpu_fraction, c.memory_slices, c.sms,
                                c.geometry))
        return tuple(out)

    # -- whole-catalog planning ----------------------------------------------
    def plan(self, demand: FunctionDemand) -> FunctionPlan:
        """Preferred geometry + per-model alternatives, or a typed
        rejection naming why every model was refused."""
        if demand in self._plans:
            return self._plans[demand]
        per_spec: list[tuple[tuple, SliceCandidate, int]] = []
        slo_misses = 0
        memory_misses = 0
        for spec in self.specs:
            cands = self.candidates(demand, spec)
            if not cands:
                sizing = required_sms_for(
                    spec, demand.curve, demand.slo_seconds, _SLO_PROBE_RPS,
                    self.utilization_ceiling)
                if sizing.feasible:
                    memory_misses += 1
                else:
                    slo_misses += 1
                continue
            best_key, best, best_n = None, None, 0
            for cand in cands:
                replicas = (1 if demand.rate_rps == 0 else
                            max(1, math.ceil(
                                demand.rate_rps / cand.capacity_rps - EPS)))
                key = (replicas * cand.gpu_fraction, replicas,
                       cand.memory_slices, cand.sms, cand.geometry)
                if best_key is None or key < best_key:
                    best_key, best, best_n = key, cand, replicas
            per_spec.append(((best_key[0], best_key[1], best.spec_name),
                             best, best_n))
        if not per_spec:
            if slo_misses and not memory_misses:
                reason = "SLO unachievable on every GPU model"
            elif memory_misses and not slo_misses:
                reason = "model weights fit no slice on any GPU model"
            else:
                reason = "no GPU model offers an SLO- and memory-feasible slice"
            plan = FunctionPlan(
                function=demand.name, feasible=False, reason=reason,
                placement=None, candidate=None, alternatives=(),
                replicas=0, cost=0.0)
        else:
            per_spec.sort(key=lambda t: t[0])
            _, primary, replicas = per_spec[0]
            if replicas > 1:
                placement = PlacementNeed.MULTI_GPU
            elif primary.kind == "mps":
                placement = PlacementNeed.MPS_ONLY
            elif primary.gpu_fraction >= 1.0 - EPS:
                placement = PlacementNeed.WHOLE_GPU
            else:
                placement = PlacementNeed.MIG_SLICE
            plan = FunctionPlan(
                function=demand.name, feasible=True, reason="",
                placement=placement, candidate=primary,
                alternatives=tuple(c for _, c, _ in per_spec),
                replicas=replicas,
                cost=replicas * primary.gpu_fraction)
        self._plans[demand] = plan
        return plan

    # -- packer helpers -------------------------------------------------------
    def tail_candidate(self, demand: FunctionDemand, spec_name: str,
                       residual_rps: float) -> Optional[SliceCandidate]:
        """Smallest geometry on ``spec_name`` absorbing ``residual_rps``
        (the optimiser right-sizes a function's last instance instead of
        rounding the tail up to a full uniform slice)."""
        spec = self._spec(spec_name)
        if spec is None:
            return None
        for cand in self.candidates(demand, spec):  # smallest first
            if cand.capacity_rps + EPS >= residual_rps:
                return cand
        return None

    def fit_candidate(self, demand: FunctionDemand, gpu: ClusterGpu,
                      min_capacity_rps: float) -> Optional[SliceCandidate]:
        """Smallest geometry for ``demand`` that both absorbs
        ``min_capacity_rps`` and fits ``gpu``'s free space right now."""
        for cand in self.candidates(demand, gpu.spec):
            if cand.capacity_rps + EPS < min_capacity_rps:
                continue
            if gpu.fits(cand.segment(demand.name)):
                return cand
        return None

    def _spec(self, name: str) -> Optional[GPUSpec]:
        for spec in self.specs:
            if spec.name == name:
                return spec
        return None
