"""Fleet-to-cluster feedback: sensed rates drive cluster replanning.

Closes the loop across all three tiers.  Devices report into
:class:`~repro.telemetry.resilience.ResilienceStats` counters; the
fleet publishes them through
:meth:`~repro.workloads.fleet.AutoscaledServingFleet.sensor_snapshot`
(the same guarded telemetry the :class:`~repro.workloads.autoscale.
FleetAutoscaler` trusts for MPS resizes); this adapter turns those
offered-count deltas into windowed arrival rates, smooths them, and —
when the sensed rates drift past a threshold from the rates the current
placement was sized for — re-runs the segment packer and reports the
placement diff (GPUs freed/added, segments moved).  Replanning is
deliberately *not* per-tick: cluster moves imply instance migrations,
so the drift threshold plays the role cooldowns play one tier down.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Optional, Sequence

from repro.gpu.specs import GPUSpec
from repro.cluster.model import ClusterPlacement, FunctionDemand
from repro.cluster.oracle import SizingOracle
from repro.cluster.packing import optimize_pack

__all__ = ["ClusterFeedback", "WindowedRateSensor", "placement_diff"]


class WindowedRateSensor:
    """Offered-count deltas -> windowed arrival rates, one mark per
    function (the cluster-tier sibling of the FleetAutoscaler's
    ``_sense``: monotone counters in, rates out, first sample primes)."""

    def __init__(self) -> None:
        self._marks: dict[str, tuple[float, float]] = {}

    def observe(self, name: str, offered: float,
                as_of: float) -> Optional[float]:
        """Rate over the window since the last observation, or ``None``
        while priming / on a stalled or rewound counter."""
        last = self._marks.get(name)
        self._marks[name] = (offered, as_of)
        if last is None:
            return None
        last_offered, last_time = last
        window = as_of - last_time
        if window <= 0 or offered < last_offered:
            return None  # stalled clock or restarted counter: re-prime
        return (offered - last_offered) / window


class ClusterFeedback:
    """Drift-triggered replanner sitting above one packed placement."""

    def __init__(self, demands: Sequence[FunctionDemand],
                 inventory: Sequence[tuple[GPUSpec, int]],
                 oracle: Optional[SizingOracle] = None,
                 drift_threshold: float = 0.25,
                 smoothing: float = 0.5):
        if not 0 < drift_threshold:
            raise ValueError("drift_threshold must be positive")
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self.inventory = list(inventory)
        self.oracle = oracle if oracle is not None else \
            SizingOracle([spec for spec, _ in inventory])
        self.drift_threshold = drift_threshold
        self.smoothing = smoothing
        self.demands: dict[str, FunctionDemand] = {d.name: d for d in demands}
        #: EWMA of sensed rates (seeded with the forecast).
        self.rates: dict[str, float] = {d.name: d.rate_rps for d in demands}
        self.sensor = WindowedRateSensor()
        self.placement: ClusterPlacement = optimize_pack(
            demands, self.inventory, self.oracle)
        #: Rates the current placement was sized for.
        self._planned_rates: dict[str, float] = dict(self.rates)
        self.replans = 0
        self.log: list[dict] = []

    # -- sensing --------------------------------------------------------------
    def observe_fleet(self, fleet) -> dict[str, float]:
        """Pull one windowed-rate sample per function from a fleet's
        published sensors (functions the fleet does not serve keep
        their forecast)."""
        samples = {}
        for name in self.demands:
            if name not in fleet.groups:
                continue
            offered, as_of = fleet.sensor_snapshot(name)
            samples[name] = (offered, as_of)
        return self.observe_counters(samples)

    def observe_counters(
            self, samples: Mapping[str, tuple[float, float]]
    ) -> dict[str, float]:
        """Feed raw ``name -> (offered_count, as_of)`` sensor samples
        (e.g. straight from ``ResilienceStats.offered``)."""
        for name, (offered, as_of) in sorted(samples.items()):
            rate = self.sensor.observe(name, offered, as_of)
            if rate is None:
                continue
            self.rates[name] = (self.smoothing * rate
                                + (1 - self.smoothing) * self.rates[name])
        return dict(self.rates)

    # -- control --------------------------------------------------------------
    def drift(self) -> float:
        """Largest relative gap between sensed and planned-for rates."""
        worst = 0.0
        for name, planned in self._planned_rates.items():
            sensed = self.rates.get(name, planned)
            denom = max(planned, 1e-9)
            worst = max(worst, abs(sensed - planned) / denom)
        return worst

    def replan(self, force: bool = False,
               now: float = 0.0) -> Optional[dict]:
        """Re-pack for the sensed rates when drift demands it.

        Returns the placement diff, or ``None`` when the sensed rates
        are still close enough to the planned ones.
        """
        observed_drift = self.drift()
        if not force and observed_drift < self.drift_threshold:
            return None
        new_demands = [replace(d, rate_rps=self.rates[d.name])
                       for d in self.demands.values()]
        new_placement = optimize_pack(new_demands, self.inventory,
                                      self.oracle)
        diff = placement_diff(self.placement, new_placement)
        diff["drift"] = observed_drift
        diff["time"] = now
        self.placement = new_placement
        self.demands = {d.name: d for d in new_demands}
        self._planned_rates = {d.name: d.rate_rps for d in new_demands}
        self.replans += 1
        self.log.append(diff)
        return diff

    def summary(self) -> dict:
        return {
            "replans": self.replans,
            "drift": self.drift(),
            "drift_threshold": self.drift_threshold,
            "rates": {name: self.rates[name] for name in sorted(self.rates)},
            "score": self.placement.score(),
        }


def placement_diff(old: ClusterPlacement, new: ClusterPlacement) -> dict:
    """What changes when ``new`` replaces ``old`` (migration bill)."""

    def keyed(placement: ClusterPlacement) -> dict[tuple, int]:
        out: dict[tuple, int] = {}
        for gpu in placement.gpus:
            for seg in gpu.segments:
                key = (gpu.gpu_id, seg.function, seg.geometry)
                out[key] = out.get(key, 0) + 1
        return out

    before, after = keyed(old), keyed(new)
    added = sum(max(0, n - before.get(k, 0)) for k, n in after.items())
    removed = sum(max(0, n - after.get(k, 0)) for k, n in before.items())
    resized = sorted({k[1] for k in set(before) ^ set(after)})
    return {
        "gpus_before": old.gpus_used,
        "gpus_after": new.gpus_used,
        "gpus_freed": max(0, old.gpus_used - new.gpus_used),
        "segments_added": added,
        "segments_removed": removed,
        "functions_touched": resized,
    }
