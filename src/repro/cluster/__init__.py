"""Cluster-scale placement engine (ROADMAP item 1, ParvaGPU/MISO
direction).

Everything below :mod:`repro.workloads` optimises partitions *on*
devices a fleet already owns.  This package decides *which* devices and
*which* slice geometry across a large heterogeneous cluster:

- :mod:`repro.cluster.model` — demands, GPU segments, devices, and
  placements with hard over-commitment invariants;
- :mod:`repro.cluster.oracle` — the MISO-style sizing oracle mapping
  (SLO, rate) to candidate slice geometries per GPU model, built on the
  repaired :func:`~repro.partition.autoscaler.required_sms_for` (now
  with an explicit ``feasible`` flag) and
  :class:`~repro.partition.rightsizing.RightSizer`;
- :mod:`repro.cluster.packing` — ParvaGPU-style packers: greedy
  first-fit-decreasing baseline and the tail-right-sizing + segment-
  repacking optimiser that merges fragmented slices to free whole GPUs;
- :mod:`repro.cluster.feedback` — the fleet-to-cluster adapter turning
  :class:`~repro.workloads.autoscale.FleetAutoscaler`-grade windowed
  telemetry into drift-triggered replans, closing the loop device →
  fleet → cluster.
"""

from repro.cluster.model import (
    ClusterGpu,
    ClusterPlacement,
    FunctionDemand,
    GpuSegment,
    LatencyCurve,
    build_fleet,
)
from repro.cluster.oracle import FunctionPlan, SizingOracle, SliceCandidate
from repro.cluster.packing import greedy_pack, optimize_pack
from repro.cluster.feedback import (
    ClusterFeedback,
    WindowedRateSensor,
    placement_diff,
)

__all__ = [
    "ClusterFeedback",
    "ClusterGpu",
    "ClusterPlacement",
    "FunctionDemand",
    "FunctionPlan",
    "GpuSegment",
    "LatencyCurve",
    "SizingOracle",
    "SliceCandidate",
    "WindowedRateSensor",
    "build_fleet",
    "greedy_pack",
    "optimize_pack",
    "placement_diff",
]
