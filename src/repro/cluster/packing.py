"""ParvaGPU-style segment packing: FFD baseline + repacking optimiser.

Two packers share one oracle and one admission rule (reject exactly the
functions the oracle calls infeasible, so their in-SLO scores are
directly comparable):

- :func:`greedy_pack` — classic first-fit-decreasing: functions sorted
  by whole-GPU-equivalent cost, each deployed as ``ceil(rate /
  capacity)`` *uniform* slices onto the first device with room.
- :func:`optimize_pack` — the same order, plus (a) *tail right-sizing*:
  a function's last instance shrinks to the smallest geometry covering
  the residual rate instead of rounding up to a full uniform slice, and
  (b) *segment repacking*: emptiest devices are evacuated one at a time
  — each segment is dropped outright when the function already has
  surplus capacity, or recreated (possibly smaller) in a fuller
  device's hole — merging fragmented slices until no device can be
  freed.  Fewer GPUs at identical served capacity is the whole game
  (ParvaGPU's objective).

Both packers are deterministic: every ordering is keyed on stable
(cost, name, id) tuples and no randomness enters anywhere, so twin runs
are byte-identical — the bench gates on it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gpu.specs import GPUSpec
from repro.cluster.model import (
    ClusterGpu,
    ClusterPlacement,
    FunctionDemand,
    build_fleet,
)
from repro.cluster.oracle import FunctionPlan, SizingOracle, SliceCandidate

__all__ = ["greedy_pack", "optimize_pack"]

EPS = 1e-9


def _prepare(demands: Sequence[FunctionDemand],
             inventory: Sequence[tuple[GPUSpec, int]],
             oracle: Optional[SizingOracle],
             ) -> tuple[ClusterPlacement, SizingOracle,
                        list[FunctionDemand], dict[str, FunctionPlan]]:
    names = [d.name for d in demands]
    if len(set(names)) != len(names):
        raise ValueError("function names must be unique")
    if oracle is None:
        oracle = SizingOracle([spec for spec, _ in inventory])
    placement = ClusterPlacement(build_fleet(inventory),
                                 {d.name: d for d in demands})
    plans = {d.name: oracle.plan(d) for d in demands}
    # First-fit-*decreasing*: big asks first, slivers fill the holes.
    order = sorted(demands,
                   key=lambda d: (-plans[d.name].cost, d.name))
    return placement, oracle, order, plans


def _place_function(placement: ClusterPlacement, demand: FunctionDemand,
                    plan: FunctionPlan, oracle: SizingOracle,
                    rightsize_tail: bool) -> bool:
    """Deploy one function; all-or-nothing (rolls back on failure)."""
    residual = demand.rate_rps
    placed: list[tuple[ClusterGpu, object]] = []
    for cand in plan.alternatives:
        spec_gpus = [g for g in placement.gpus
                     if g.spec.name == cand.spec_name]
        while residual > EPS or not placed:
            chosen = cand
            if rightsize_tail and residual <= cand.capacity_rps - EPS:
                tail = oracle.tail_candidate(demand, cand.spec_name,
                                             residual)
                if tail is not None:
                    chosen = tail
            segment = chosen.segment(demand.name)
            target = next((g for g in spec_gpus if g.fits(segment)), None)
            if target is None:
                break  # this model's devices are full; spill over
            target.place(segment)
            placed.append((target, segment))
            residual -= segment.capacity_rps
            if demand.rate_rps == 0:
                return True  # one keep-warm sliver is the whole ask
        if residual <= EPS and placed:
            return True
    for gpu, segment in placed:
        gpu.remove(segment)
    return False


def _pack(demands: Sequence[FunctionDemand],
          inventory: Sequence[tuple[GPUSpec, int]],
          oracle: Optional[SizingOracle],
          rightsize_tail: bool) -> tuple[ClusterPlacement, SizingOracle]:
    placement, oracle, order, plans = _prepare(demands, inventory, oracle)
    for demand in order:
        plan = plans[demand.name]
        if not plan.feasible:
            placement.rejected[demand.name] = plan.reason
            continue
        if not _place_function(placement, demand, plan, oracle,
                               rightsize_tail):
            placement.rejected[demand.name] = \
                "insufficient cluster capacity"
    return placement, oracle


def greedy_pack(demands: Sequence[FunctionDemand],
                inventory: Sequence[tuple[GPUSpec, int]],
                oracle: Optional[SizingOracle] = None) -> ClusterPlacement:
    """First-fit-decreasing with uniform slices (the baseline)."""
    placement, _ = _pack(demands, inventory, oracle, rightsize_tail=False)
    return placement


def optimize_pack(demands: Sequence[FunctionDemand],
                  inventory: Sequence[tuple[GPUSpec, int]],
                  oracle: Optional[SizingOracle] = None) -> ClusterPlacement:
    """Tail-right-sized FFD followed by segment repacking."""
    placement, oracle = _pack(demands, inventory, oracle,
                              rightsize_tail=True)
    _repack(placement, oracle)
    return placement


# -- segment repacking --------------------------------------------------------

def _repack(placement: ClusterPlacement, oracle: SizingOracle) -> int:
    """Evacuate emptiest devices into fuller ones until none frees.

    Each successful evacuation empties one device without touching any
    unused one, so the used-GPU count strictly decreases — termination
    is structural, not heuristic.  Returns the number of GPUs freed.
    """
    freed = 0
    while True:
        donors = sorted((g for g in placement.gpus if g.used),
                        key=lambda g: (g.compute_fraction(), g.gpu_id))
        for donor in donors:
            if _evacuate(placement, donor, oracle):
                freed += 1
                break  # re-rank: occupancies changed
        else:
            return freed


def _evacuate(placement: ClusterPlacement, donor: ClusterGpu,
              oracle: SizingOracle) -> bool:
    """Move/shrink/drop every segment off ``donor``; all-or-nothing."""
    surplus: dict[str, float] = {}
    moved: list[tuple[ClusterGpu, object]] = []
    for segment in sorted(donor.segments,
                          key=lambda s: (s.function, -s.sms, s.geometry)):
        name = segment.function
        if name not in surplus:
            surplus[name] = (placement.capacity_of(name)
                             - placement.demands[name].rate_rps)
        deficit = segment.capacity_rps - surplus[name]
        if deficit <= EPS:
            # The function over-provisions by at least this segment
            # (tail rounding, earlier repacks): drop it outright.
            surplus[name] -= segment.capacity_rps
            continue
        demand = placement.demands[name]
        targets = sorted(
            (g for g in placement.gpus if g is not donor and g.used),
            key=lambda g: (-g.compute_fraction(), g.gpu_id))
        replacement = None
        for target in targets:
            candidate = oracle.fit_candidate(demand, target, deficit)
            if candidate is not None:
                replacement = candidate.segment(name)
                target.place(replacement)
                moved.append((target, replacement))
                surplus[name] += replacement.capacity_rps \
                    - segment.capacity_rps
                break
        if replacement is None:
            for gpu, seg in moved:
                gpu.remove(seg)
            return False
    for segment in list(donor.segments):
        donor.remove(segment)
    return True
