"""Event-loop profiler implementation.

The engine's :meth:`Environment.step` hands every ``(when, event,
callbacks)`` batch to :meth:`EventLoopProfiler.record` when a profiler
is attached.  ``record`` runs the callbacks itself — same order, same
exception semantics — so attaching a profiler cannot change a
simulation's outcome, only observe it.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from repro.sim import core as _core

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment, Event

#: Report schema identifier.
SCHEMA = "repro-profile/1"


def site_name(cb: Callable) -> str:
    """Stable, human-readable identity for a callback site.

    Bound methods and plain functions resolve to their code object
    (``file:line:qualname``), which is identical across runs and across
    processes for the same source tree; anything without a code object
    (C callables, partials) falls back to its type/repr-derived name.
    """
    func = getattr(cb, "__func__", cb)
    code = getattr(func, "__code__", None)
    if code is not None:
        qual = getattr(func, "__qualname__", code.co_name)
        return f"{code.co_filename}:{code.co_firstlineno}:{qual}"
    return f"<{type(cb).__module__}.{type(cb).__qualname__}>"


class _SiteStats:
    __slots__ = ("events", "wall", "sim")

    def __init__(self) -> None:
        self.events = 0
        self.wall = 0.0
        self.sim = 0.0


class EventLoopProfiler:
    """Per-callback-site attribution for one or more environments.

    Collected per site (a callback's ``__code__`` identity):

    - ``events``: number of callback invocations,
    - ``wall``: wall-clock seconds spent inside the callback,
    - ``sim``: simulated seconds that elapsed *leading into* the events
      this site handled (the gap from the previously processed event
      timestamp) — "which activity is the clock waiting on".

    Plus a power-of-two queue-depth histogram sampled at every event
    pop, a deterministic proxy for scheduler pressure.
    """

    def __init__(self) -> None:
        self.sites: dict[int, _SiteStats] = {}
        self._site_cb: dict[int, Callable] = {}
        #: Power-of-two buckets: index ``i`` counts pops with queue
        #: depth in ``[2**(i-1), 2**i - 1]`` (index 0 = empty queue).
        self.depth_hist: list[int] = [0] * 40
        self.events = 0
        self.wall_in_callbacks = 0.0
        self._last_when: Optional[float] = None
        self._attached: list["Environment"] = []

    # -- collection --------------------------------------------------------

    def record(self, env: "Environment", when: float, event: "Event",
               callbacks: list) -> None:
        """Run ``callbacks`` for ``event``, attributing as we go.

        Called by :meth:`Environment.step` in place of the plain
        callback loop; identical invocation order and exception
        propagation.
        """
        self.events += 1
        self.depth_hist[len(env._queue).bit_length()] += 1
        last = self._last_when
        sim_gap = when - last if (last is not None and when > last) else 0.0
        self._last_when = when
        sites = self.sites
        perf = time.perf_counter
        for cb in callbacks:
            func = getattr(cb, "__func__", cb)
            code = getattr(func, "__code__", None)
            key = id(code) if code is not None else id(type(cb))
            st = sites.get(key)
            if st is None:
                st = sites[key] = _SiteStats()
                self._site_cb[key] = cb
            t0 = perf()
            cb(event)
            dt = perf() - t0
            st.events += 1
            st.wall += dt
            st.sim += sim_gap
            self.wall_in_callbacks += dt
            sim_gap = 0.0  # the gap belongs to the first callback only

    # -- attachment --------------------------------------------------------

    def attach(self, env: "Environment") -> None:
        """Start profiling ``env`` (replaces any previous profiler)."""
        env._profiler = self
        if self._last_when is None:
            # Anchor sim-gap attribution at the clock's attach-time
            # value, so the first event's leading gap is counted too.
            self._last_when = env._now
        self._attached.append(env)

    def detach_all(self) -> None:
        for env in self._attached:
            if env._profiler is self:
                env._profiler = None
        self._attached.clear()

    # -- reporting ---------------------------------------------------------

    def report(self, top: int = 25) -> dict[str, Any]:
        """Structured report, heaviest wall-time sites first."""
        rows = []
        total_wall = self.wall_in_callbacks
        for key, st in self.sites.items():
            rows.append({
                "site": site_name(self._site_cb[key]),
                "events": st.events,
                "wall_seconds": st.wall,
                "wall_pct": (100.0 * st.wall / total_wall
                             if total_wall > 0 else 0.0),
                "sim_seconds": st.sim,
            })
        rows.sort(key=lambda r: (-r["wall_seconds"], r["site"]))
        hist = {}
        for i, n in enumerate(self.depth_hist):
            if not n:
                continue
            if i == 0:
                label = "0"
            elif i == 1:
                label = "1"
            else:
                label = f"{2 ** (i - 1)}-{2 ** i - 1}"
            hist[label] = n
        return {
            "schema": SCHEMA,
            "events": self.events,
            "distinct_sites": len(self.sites),
            "wall_seconds_in_callbacks": total_wall,
            "queue_depth_hist": hist,
            "sites": rows[:top],
        }

    def report_json(self, top: int = 25, indent: int = 2) -> str:
        return json.dumps(self.report(top), indent=indent)

    def summary(self, top: int = 5) -> dict[str, Any]:
        """Compact summary for embedding into bench JSON."""
        rep = self.report(top)
        return {
            "events": rep["events"],
            "distinct_sites": rep["distinct_sites"],
            "wall_seconds_in_callbacks": rep["wall_seconds_in_callbacks"],
            "top_sites": [
                {"site": r["site"], "events": r["events"],
                 "wall_pct": round(r["wall_pct"], 2)}
                for r in rep["sites"]
            ],
        }


@contextmanager
def profiling(env: Optional["Environment"] = None,
              profiler: Optional[EventLoopProfiler] = None,
              ) -> Iterator[EventLoopProfiler]:
    """Attach a profiler to ``env`` — or to every Environment created
    inside the block when ``env`` is omitted (via ``ENV_CREATED_HOOK``,
    chaining any hook already installed).
    """
    prof = profiler if profiler is not None else EventLoopProfiler()
    if env is not None:
        prof.attach(env)
        try:
            yield prof
        finally:
            prof.detach_all()
        return
    prev_hook = _core.ENV_CREATED_HOOK

    def _hook(new_env: "Environment") -> None:
        if prev_hook is not None:
            prev_hook(new_env)
        prof.attach(new_env)

    _core.ENV_CREATED_HOOK = _hook
    try:
        yield prof
    finally:
        _core.ENV_CREATED_HOOK = prev_hook
        prof.detach_all()
