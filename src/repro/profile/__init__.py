"""Deterministic event-loop profiler (:mod:`repro.profile`).

Answers "where do the events — and the wall seconds — go?" for any
simulation without perturbing it: callbacks run in exactly the order the
engine would run them anyway; the profiler only wraps each invocation
with a timer and attributes it to the *callback site* (the function's
``__code__`` identity, i.e. file:line:qualname).  Event counts, per-site
sim-time attribution, and the queue-depth histogram are therefore fully
deterministic for a given (seed, config); only the wall-second columns
vary run to run.

When no profiler is attached the engine pays a single ``is None`` check
per event batch (the fast drains skip even that), so profiling is
zero-cost disabled — enforced by the overhead gate in the bench suite.

Usage::

    from repro.profile import profiling

    with profiling() as prof:          # hooks every new Environment
        run_simulation()
    print(prof.report_json())

or explicitly for one environment::

    prof = EventLoopProfiler()
    prof.attach(env)
    env.run()
    report = prof.report()
"""

from repro.profile.loopprof import (
    EventLoopProfiler,
    profiling,
    site_name,
)

__all__ = ["EventLoopProfiler", "profiling", "site_name"]
