"""Sweep execution: parallel fan-out plus content-addressed caching.

The paper's artefacts are grids of independent simulator runs; this
package executes those grids over a process pool with deterministic
per-config seeds and caches results by a content hash of the config and
the package source (see :mod:`repro.runner.sweep` and
:mod:`repro.runner.cache`).
"""

from repro.runner.cache import (
    MISS,
    ResultCache,
    default_cache_dir,
    source_digest,
)
from repro.runner.shardpool import ShardWorkerError, ShardWorkerPool
from repro.runner.sweep import (
    SweepError,
    SweepRunner,
    default_jobs,
    derive_seed,
)

__all__ = [
    "MISS",
    "ResultCache",
    "ShardWorkerError",
    "ShardWorkerPool",
    "SweepError",
    "SweepRunner",
    "default_cache_dir",
    "default_jobs",
    "derive_seed",
    "source_digest",
]
