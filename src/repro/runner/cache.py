"""Content-addressed result cache for sweep executions.

A cache entry is keyed on the *content* of the computation, not on when
or where it ran:

``key = sha256(task name + canonical JSON of the config + source digest)``

The source digest hashes every ``.py`` file of the installed ``repro``
package, so editing any simulator/model code invalidates every cached
result — a stale cache can never masquerade as a fresh measurement.
Values are pickled to ``<root>/<key[:2]>/<key>.pkl``; the two-level
fan-out keeps directories small for large sweeps.

The cache has two layers:

- an in-process *memory* layer, which shares results between commands of
  a single CLI invocation (``repro fig4 fig5`` pays for one sweep);
- an on-disk layer, which makes repeated invocations near-instant and is
  what ``--no-cache`` disables.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import Any, Optional

__all__ = ["ResultCache", "source_digest", "default_cache_dir"]

#: Sentinel distinguishing "miss" from a cached ``None``.
MISS = object()

_digest_memo: dict[str, str] = {}


def source_digest(package_dir: Optional[str] = None) -> str:
    """Hash of every ``.py`` file under the ``repro`` package (memoised).

    File contents (not mtimes) feed the hash, so the digest is stable
    across checkouts and machines but changes with any code edit.
    """
    if package_dir is None:
        import repro

        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    cached = _digest_memo.get(package_dir)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(package_dir)):
        dirnames.sort()
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            h.update(os.path.relpath(path, package_dir).encode())
            with open(path, "rb") as fh:
                h.update(fh.read())
    digest = h.hexdigest()
    _digest_memo[package_dir] = digest
    return digest


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``<repo>/.sweep-cache``."""
    return os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), ".sweep-cache"),
    )


class ResultCache:
    """Two-layer (memory + disk) content-addressed result store."""

    def __init__(self, root: Optional[str] = None, *, disk: bool = True,
                 memory: bool = True):
        self.root = root or default_cache_dir()
        self.disk = disk
        self.memory = memory
        self._mem: dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    # -- keys ---------------------------------------------------------------
    def key(self, task: str, config: Any) -> str:
        """Content hash for one ``(task, config)`` computation.

        ``config`` must be JSON-serialisable (dicts/lists/tuples of
        primitives) so the key is canonical and machine-independent.
        """
        try:
            blob = json.dumps({"task": task, "config": config},
                              sort_keys=True, separators=(",", ":"))
        except TypeError as exc:
            raise TypeError(
                f"sweep config for {task!r} is not JSON-serialisable: "
                f"{config!r}"
            ) from exc
        h = hashlib.sha256()
        h.update(source_digest().encode())
        h.update(blob.encode())
        return h.hexdigest()

    # -- lookup -------------------------------------------------------------
    def get(self, key: str) -> Any:
        """Return the cached value or the module-level ``MISS`` sentinel."""
        if self.memory and key in self._mem:
            self.hits += 1
            return self._mem[key]
        if self.disk:
            path = self._path(key)
            if os.path.exists(path):
                try:
                    with open(path, "rb") as fh:
                        value = pickle.load(fh)
                except (OSError, pickle.UnpicklingError, EOFError):
                    pass  # corrupt/truncated entry: treat as a miss
                else:
                    if self.memory:
                        self._mem[key] = value
                    self.hits += 1
                    return value
        self.misses += 1
        return MISS

    def put(self, key: str, value: Any) -> None:
        if self.memory:
            self._mem[key] = value
        if self.disk:
            path = self._path(key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic: readers never see partial writes

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    # -- stats --------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop the memory layer and delete every disk entry."""
        self._mem.clear()
        if not os.path.isdir(self.root):
            return
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for fname in filenames:
                if fname.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(dirpath, fname))
                    except OSError:
                        pass
