"""Parallel sweep execution over independent simulation configs.

Every paper artefact is a grid of *independent* simulator runs (the
Fig. 2 SM sweep, the Fig. 4/5 ``(mode, k)`` grid, Table 1's techniques,
the right-sizing workloads).  :class:`SweepRunner` fans such a grid out
over a ``ProcessPoolExecutor`` and collects results in config order, so
parallel output is indistinguishable from a serial loop:

- **Determinism** — each simulation builds its own ``Environment`` and
  derives any randomness from :func:`derive_seed` (a content hash of the
  config), so results do not depend on worker scheduling, process reuse,
  or the serial/parallel choice.
- **Crash isolation** — a worker dying (or raising) fails only its own
  config; the runner retries failed configs, rebuilding the pool if it
  broke, and runs the final attempt serially in-process so a
  deterministic failure surfaces with a clean traceback naming the
  config (:class:`SweepError`).
- **Caching** — with a :class:`~repro.runner.cache.ResultCache`
  attached, finished configs are looked up by content hash before any
  process is spawned; a warm sweep costs milliseconds.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Optional, Sequence

from repro.runner.cache import MISS, ResultCache

__all__ = ["SweepRunner", "SweepError", "derive_seed", "default_jobs"]


class SweepError(RuntimeError):
    """A sweep config failed every attempt.

    Attributes
    ----------
    task, config:
        Identify the failing unit of work.
    attempts:
        How many times it was tried before giving up.
    """

    def __init__(self, task: str, config: Any, attempts: int,
                 cause: BaseException):
        super().__init__(
            f"sweep task {task!r} failed after {attempts} attempt(s) "
            f"for config {config!r}: {cause!r}"
        )
        self.task = task
        self.config = config
        self.attempts = attempts
        self.__cause__ = cause


def derive_seed(task: str, config: Any) -> int:
    """Deterministic 63-bit seed for one sweep config.

    Derived from content (not position or time), so a config keeps its
    seed when the grid around it is re-ordered or filtered.
    """
    blob = json.dumps({"task": task, "config": config}, sort_keys=True,
                      default=str, separators=(",", ":"))
    return int.from_bytes(hashlib.sha256(blob.encode()).digest()[:8],
                          "big") >> 1


def default_jobs() -> int:
    """``$REPRO_JOBS``, else the machine's CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _invoke(fn: Callable, config: Any, task: str, pass_seed: bool) -> Any:
    """Worker-side entry point (module-level so it pickles)."""
    if pass_seed:
        return fn(config, seed=derive_seed(task, config))
    return fn(config)


class SweepRunner:
    """Execute a function over a grid of configs, in parallel, with caching.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (or ``0``/negative) runs serially
        in-process — no executor, no pickling.  ``None`` uses
        :func:`default_jobs`.
    cache:
        Optional :class:`ResultCache`.  Configs must then be
        JSON-serialisable so keys are canonical.
    retries:
        Extra attempts per failed config (beyond the first).  The last
        attempt always runs serially in the parent process.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None, retries: int = 1,
                 mp_context: Optional[str] = None):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.cache = cache
        self.retries = max(0, int(retries))
        self._mp_context = mp_context
        #: Configs actually executed (cache misses) since construction.
        self.executed = 0

    # -- public API ---------------------------------------------------------
    def map(self, fn: Callable, configs: Sequence[Any],
            task: Optional[str] = None) -> list:
        """Run ``fn(config)`` for every config; results in config order.

        ``fn`` must be a module-level callable and each config picklable.
        If ``fn`` accepts a ``seed`` keyword, the runner passes it the
        config's :func:`derive_seed` value.
        """
        configs = list(configs)
        task = task or f"{fn.__module__}.{fn.__qualname__}"
        pass_seed = "seed" in inspect.signature(fn).parameters

        results: list[Any] = [MISS] * len(configs)
        pending: list[int] = []
        keys: list[Optional[str]] = [None] * len(configs)
        for i, config in enumerate(configs):
            if self.cache is not None:
                keys[i] = self.cache.key(task, config)
                value = self.cache.get(keys[i])
                if value is not MISS:
                    results[i] = value
                    continue
            pending.append(i)

        if pending:
            n_workers = min(self.jobs, len(pending))
            if n_workers <= 1:
                self._run_serial(fn, configs, task, pass_seed, pending,
                                 results)
            else:
                self._run_parallel(fn, configs, task, pass_seed, pending,
                                   results, n_workers)
            self.executed += len(pending)
            if self.cache is not None:
                for i in pending:
                    self.cache.put(keys[i], results[i])
        return results

    # -- execution strategies -----------------------------------------------
    def _run_serial(self, fn, configs, task, pass_seed, pending, results):
        for i in pending:
            results[i] = self._attempt_serial(fn, configs[i], task, pass_seed,
                                              prior_attempts=0)

    def _attempt_serial(self, fn, config, task, pass_seed,
                        prior_attempts: int) -> Any:
        attempts = prior_attempts
        while True:
            attempts += 1
            try:
                return _invoke(fn, config, task, pass_seed)
            except Exception as exc:  # noqa: BLE001 - isolate per config
                if attempts > self.retries:
                    raise SweepError(task, config, attempts, exc) from exc

    def _run_parallel(self, fn, configs, task, pass_seed, pending, results,
                      n_workers: int):
        import multiprocessing

        ctx = None
        if self._mp_context is not None:
            ctx = multiprocessing.get_context(self._mp_context)
        elif "fork" in multiprocessing.get_all_start_methods():
            # fork skips re-importing the package per worker; simulations
            # never share mutable global state, so it is safe here.
            ctx = multiprocessing.get_context("fork")

        remaining = list(pending)
        last_exc: dict[int, BaseException] = {}
        for round_ in range(self.retries + 1):
            if not remaining:
                return
            if round_ == self.retries and self.retries > 0:
                # Final attempt runs serially in the parent process, so a
                # deterministic failure surfaces with a clean traceback.
                for i in remaining:
                    try:
                        results[i] = _invoke(fn, configs[i], task, pass_seed)
                    except Exception as exc:  # noqa: BLE001
                        raise SweepError(task, configs[i], round_ + 1,
                                         exc) from exc
                return
            failed: list[int] = []
            executor = ProcessPoolExecutor(max_workers=n_workers,
                                           mp_context=ctx)
            try:
                futures = {
                    executor.submit(_invoke, fn, configs[i], task, pass_seed): i
                    for i in remaining
                }
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done,
                                          return_when=FIRST_COMPLETED)
                    for fut in done:
                        i = futures[fut]
                        try:
                            results[i] = fut.result()
                        except Exception as exc:  # noqa: BLE001
                            # Includes BrokenProcessPool: every future on
                            # a broken pool fails and is retried on a
                            # fresh pool (or serially, last round).
                            failed.append(i)
                            last_exc[i] = exc
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
            remaining = failed
        if not remaining:
            return
        i = remaining[0]
        raise SweepError(task, configs[i], self.retries + 1,
                         last_exc[i]) from last_exc[i]
