"""Long-lived shard workers for the sharded simulation engine.

:class:`~repro.runner.sweep.SweepRunner` is one-shot fan-out: every
``map`` call ships independent configs to a fresh
``ProcessPoolExecutor`` and tears it down.  The sharded simulation
(:mod:`repro.sim.sharded`) needs the opposite shape — **stateful**
workers that each hold a set of live simulation cells and advance them
epoch by epoch over many round trips:

- each worker builds its cells once (from picklable
  :class:`~repro.sim.sharded.CellSpec` recipes) and keeps them alive
  for the whole run, so per-epoch cost is one pipe round trip, not a
  process spawn + scenario rebuild;
- the pool drives every worker through the same lockstep epoch
  barrier (``step_epoch``), pipelining the sends so shards genuinely
  run concurrently;
- a **crashed worker is respawned and deterministically replayed**:
  the pool logs every completed epoch (barrier time + cross-shard
  commands), rebuilds the dead worker's cells from their specs, and
  re-advances them through the logged epochs — cells are deterministic
  in (spec, seed), so the replayed worker reaches the exact state it
  held at the last barrier and the run continues bit-identically
  (mirroring the PR-4 ``crash_worker`` respawn semantics).

A worker that *raises* (as opposed to dying) forwards the traceback
and the pool fails fast with :class:`ShardWorkerError` — a
deterministic cell bug would otherwise respawn-loop forever.
"""

from __future__ import annotations

import multiprocessing
import os
import resource
import traceback
from typing import Any, Optional, Sequence

__all__ = ["ShardWorkerError", "ShardWorkerPool"]


class ShardWorkerError(RuntimeError):
    """A shard worker failed (raised, or died past the respawn budget)."""


def _worker_main(conn, assigned) -> None:
    """Worker loop: build cells, then serve epoch/result requests.

    ``assigned`` is a list of ``(cell_id, spec)`` pairs; the worker owns
    those cells until told to stop.  Every reply is ``("ok", payload)``
    or ``("error", formatted traceback)``.
    """
    rss0 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    try:
        cells = [(cell_id, spec.build()) for cell_id, spec in assigned]
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    finished = {cell_id: False for cell_id, _ in cells}
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return
        op = msg[0]
        try:
            if op == "epoch":
                _, t_end, commands = msg
                snapshots = {}
                for cell_id, cell in cells:
                    if commands and cell_id in commands:
                        cell.apply_command(commands[cell_id])
                    if not finished[cell_id]:
                        finished[cell_id] = bool(cell.advance(t_end))
                    snapshots[cell_id] = {
                        "events": cell.drain_events(),
                        "finished": finished[cell_id],
                    }
                conn.send(("ok", snapshots))
            elif op == "result":
                rss1 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                conn.send(("ok", {
                    "cells": {cell_id: cell.result()
                              for cell_id, cell in cells},
                    "rss_growth_kb": max(0, rss1 - rss0),
                    "pid": os.getpid(),
                }))
            elif op == "stop":
                conn.send(("ok", None))
                conn.close()
                return
            else:
                conn.send(("error", f"unknown op {op!r}"))
        except BaseException:
            conn.send(("error", traceback.format_exc()))


class _Worker:
    """Parent-side handle: process + pipe + respawn count."""

    __slots__ = ("assigned", "proc", "conn", "respawns")

    def __init__(self, assigned):
        self.assigned = assigned
        self.proc = None
        self.conn = None
        self.respawns = 0


class ShardWorkerPool:
    """A fixed set of long-lived workers, each owning some cells.

    Parameters
    ----------
    assignments:
        One entry per worker: a list of ``(cell_id, spec)`` pairs the
        worker builds and owns.  Cell ids must be globally unique.
    mp_context:
        Start-method name (default ``"fork"`` where available — cells
        need not re-import the package, and spec objects transfer
        in-memory).
    max_respawns:
        Crash budget *per worker*.  Each crash costs a rebuild and a
        deterministic replay of all completed epochs; past the budget
        the pool raises :class:`ShardWorkerError`.
    """

    def __init__(self, assignments: Sequence[Sequence[tuple]],
                 mp_context: Optional[str] = None, max_respawns: int = 2):
        if not assignments:
            raise ValueError("need at least one worker assignment")
        seen: set = set()
        for assigned in assignments:
            for cell_id, _spec in assigned:
                if cell_id in seen:
                    raise ValueError(f"duplicate cell id {cell_id!r}")
                seen.add(cell_id)
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(mp_context)
        self.max_respawns = max(0, int(max_respawns))
        #: Completed epochs, for crash replay: (t_end, commands).
        self._epochs: list[tuple[float, dict]] = []
        self._workers = [_Worker(list(assigned)) for assigned in assignments]
        self._closed = False
        for worker in self._workers:
            self._spawn(worker)

    # -- lifecycle ----------------------------------------------------------
    def _spawn(self, worker: _Worker) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(target=_worker_main,
                                 args=(child, worker.assigned), daemon=True)
        proc.start()
        child.close()
        worker.proc, worker.conn = proc, parent

    def _reap(self, worker: _Worker) -> None:
        if worker.conn is not None:
            worker.conn.close()
            worker.conn = None
        if worker.proc is not None:
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover - defensive
                worker.proc.kill()
                worker.proc.join()
            worker.proc = None

    def close(self) -> None:
        """Stop every worker; idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
                worker.conn.recv()
            except (EOFError, OSError):
                pass
            self._reap(worker)

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def worker_pids(self) -> list[int]:
        """Current worker process ids (stable while nothing crashes)."""
        return [worker.proc.pid for worker in self._workers]

    # -- crash recovery -----------------------------------------------------
    def _respawn(self, worker: _Worker) -> None:
        """Rebuild a dead worker and replay it to the last epoch barrier."""
        worker.respawns += 1
        if worker.respawns > self.max_respawns:
            raise ShardWorkerError(
                f"shard worker (cells {[c for c, _ in worker.assigned]}) "
                f"crashed {worker.respawns} times; respawn budget "
                f"{self.max_respawns} exhausted")
        self._reap(worker)
        self._spawn(worker)
        # Deterministic replay: the fresh cells re-advance through every
        # completed barrier (re-applying the logged cross-shard
        # commands), reconstructing the state held when the old process
        # died.  Replay outputs duplicate already-merged snapshots, so
        # they are discarded.
        for t_end, commands in self._epochs:
            self._exchange(worker, ("epoch", t_end, commands))

    def _exchange(self, worker: _Worker, msg: tuple) -> Any:
        """One send/recv against a worker, respawning through crashes."""
        while True:
            try:
                worker.conn.send(msg)
                kind, payload = worker.conn.recv()
            except (EOFError, OSError):
                self._respawn(worker)
                continue
            if kind == "error":
                raise ShardWorkerError(payload)
            return payload

    # -- epoch barrier ------------------------------------------------------
    def step_epoch(self, t_end: float,
                   commands: Optional[dict] = None) -> dict:
        """Advance every cell to the ``t_end`` barrier; merge snapshots.

        Sends are pipelined (every worker runs its epoch concurrently)
        and the barrier completes only when every worker has replied —
        crashed workers are respawned, replayed, and re-asked before the
        method returns.  Returns ``{cell_id: {"events", "finished"}}``.
        """
        if self._closed:
            raise ShardWorkerError("pool is closed")
        commands = dict(commands or {})
        msg = ("epoch", float(t_end), commands)
        snapshots: dict = {}
        pending: list[_Worker] = []
        for worker in self._workers:
            try:
                worker.conn.send(msg)
                pending.append(worker)
            except (EOFError, OSError):
                # Dead before the send: respawn + replay, then run this
                # worker's epoch synchronously.
                self._respawn(worker)
                snapshots.update(self._exchange(worker, msg))
        for worker in pending:
            try:
                kind, payload = worker.conn.recv()
            except (EOFError, OSError):
                self._respawn(worker)
                payload = self._exchange(worker, msg)
                kind = "ok"
            if kind == "error":
                raise ShardWorkerError(payload)
            snapshots.update(payload)
        self._epochs.append((float(t_end), commands))
        return snapshots

    def results(self) -> dict:
        """Collect per-cell results plus per-worker diagnostics."""
        if self._closed:
            raise ShardWorkerError("pool is closed")
        cells: dict = {}
        rss: list[int] = []
        pids: list[int] = []
        for worker in self._workers:
            payload = self._exchange(worker, ("result",))
            cells.update(payload["cells"])
            rss.append(payload["rss_growth_kb"])
            pids.append(payload["pid"])
        return {"cells": cells, "worker_rss_growth_kb": rss,
                "worker_pids": pids,
                "worker_respawns": [w.respawns for w in self._workers]}
