"""Deterministic, named random-number streams.

Every stochastic model component pulls from its own named stream so that
adding randomness to one subsystem never perturbs another — the classic
"common random numbers" discipline for comparable simulation experiments.

Derivation uses ``SeedSequence`` with a ``spawn_key`` built from the
full sha256 digest of the stream name (or name *path*), so:

- streams are statistically independent and stable across runs,
  Python processes, and platforms;
- distinct names can never collide (the pre-fix scheme truncated names
  to their first 8 bytes, so ``"partition1"``/``"partition2"`` silently
  shared a stream);
- adding a new named stream — e.g. a new shard cell — never perturbs
  any existing stream's draws, the invariant the sharded simulation's
  bit-identity gate rests on.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "substream_seed"]

# sha256 spawn keys and derived child seeds are pure functions of their
# inputs, and fleet builders re-derive the same (root, path) pairs for
# every cell/replica on every build/repartition — memoise both.  The
# key space is tiny in practice (one entry per named component), so the
# caches are unbounded.
_SPAWN_KEY_CACHE: dict[tuple, tuple[int, ...]] = {}
_SEED_CACHE: dict[tuple, int] = {}


def _spawn_key(*path) -> tuple[int, ...]:
    """sha256 of the name path as eight 32-bit SeedSequence key words."""
    hashable = True
    try:
        cached = _SPAWN_KEY_CACHE.get(path)
    except TypeError:
        cached = None  # unhashable path element: derive uncached
        hashable = False
    if cached is not None:
        return cached
    blob = "\x1f".join(str(p) for p in path).encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    key = tuple(int.from_bytes(digest[i:i + 4], "big")
                for i in range(0, 32, 4))
    if hashable:
        # Two paths hash identically only if their str() forms match,
        # in which case the derivation is identical too — safe to share.
        _SPAWN_KEY_CACHE[path] = key
    return key


def substream_seed(root: int, *path) -> int:
    """A 63-bit child seed derived from ``root`` and a name path.

    ``spawn_key``-style derivation: the path (any mix of strings and
    ints, e.g. ``("fleet-cell", 3)``) is hashed into a
    :class:`numpy.random.SeedSequence` spawn key under the root
    entropy.  Each ``(root, path)`` pair owns an independent substream,
    and — unlike positional schemes such as ``seed + i`` — a substream
    depends only on its *own* name: adding shard 8 to a 7-shard run
    cannot perturb shard 3's draws, and two scenarios seeded ``s`` and
    ``s + 1`` can never alias each other's cells.

    The result is non-negative and fits in 63 bits, so it is a valid
    seed for ``numpy.random.default_rng``, ``random.Random``, and every
    ``seed=`` parameter in this package.
    """
    hashable = True
    key = (int(root),) + path
    try:
        cached = _SEED_CACHE.get(key)
    except TypeError:
        cached = None  # unhashable path element: derive uncached
        hashable = False
    if cached is not None:
        return cached
    seq = np.random.SeedSequence(entropy=int(root),
                                 spawn_key=_spawn_key(*path))
    seed = int(seq.generate_state(1, np.uint64)[0] >> np.uint64(1))
    if hashable:
        _SEED_CACHE[key] = seed
    return seed


class RngRegistry:
    """Factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``.

        Streams are derived with :class:`numpy.random.SeedSequence` from
        the registry seed plus the full sha256 spawn key of ``name`` —
        stable across runs and Python processes, and collision-free for
        distinct names of any length.
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(entropy=self.seed,
                                         spawn_key=_spawn_key(name))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all streams; next use re-derives them from the seed."""
        self._streams.clear()
