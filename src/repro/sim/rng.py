"""Deterministic, named random-number streams.

Every stochastic model component pulls from its own named stream so that
adding randomness to one subsystem never perturbs another — the classic
"common random numbers" discipline for comparable simulation experiments.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``.

        Streams are derived with :class:`numpy.random.SeedSequence` spawned
        from ``(seed, hash(name))`` so they are statistically independent
        and stable across runs and Python processes.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Stable, process-independent hash of the stream name.
            digest = np.frombuffer(
                name.encode("utf-8").ljust(8, b"\0")[:8], dtype=np.uint64
            )[0]
            seq = np.random.SeedSequence([self.seed, int(digest)])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all streams; next use re-derives them from the seed."""
        self._streams.clear()
