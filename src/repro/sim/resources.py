"""Queued resources and stores for simulation processes.

:class:`Resource` models a counted resource (CPU cores, worker slots):
processes ``yield resource.request()`` and must release what they acquire.
:class:`Store` is an unbounded-or-bounded FIFO buffer of Python objects,
used for task queues between FaaS components.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.core import Environment, Event, SimulationError

__all__ = ["Resource", "Request", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted."""

    __slots__ = ("resource", "amount")

    def __init__(self, resource: "Resource", amount: int):
        super().__init__(resource.env, name=f"request({resource.name})")
        if amount <= 0:
            raise ValueError("request amount must be positive")
        if amount > resource.capacity:
            raise ValueError(
                f"request of {amount} exceeds capacity {resource.capacity} "
                f"of resource {resource.name!r}"
            )
        self.resource = resource
        self.amount = amount

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request (rare: O(queue) scan)."""
        if self.triggered:
            raise SimulationError("cannot cancel a granted request")
        try:
            self.resource._waiting.remove(self)
        except ValueError:
            pass


class Resource:
    """A counted, FIFO-granting resource."""

    def __init__(self, env: Environment, capacity: int, name: str = "resource"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = int(capacity)
        self.name = name
        self._in_use = 0
        # Deque: grants pop from the head — a list's pop(0) is O(n),
        # which compounds under the long waiter queues of overload tests.
        self._waiting: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, amount: int = 1) -> Request:
        """Claim ``amount`` units; the returned event fires when granted."""
        req = Request(self, amount)
        self._waiting.append(req)
        self._grant()
        return req

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` units previously granted."""
        if amount <= 0:
            raise ValueError("release amount must be positive")
        if amount > self._in_use:
            raise SimulationError(
                f"release of {amount} exceeds {self._in_use} units in use "
                f"on resource {self.name!r}"
            )
        self._in_use -= amount
        self._grant()

    def _grant(self) -> None:
        # FIFO with no bypassing: strict ordering keeps the simulation fair
        # and deterministic, at the cost of head-of-line blocking (which is
        # what a real worker queue exhibits anyway).
        while self._waiting and self._waiting[0].amount <= self.available:
            req = self._waiting.popleft()
            self._in_use += req.amount
            req.succeed(req)


class _StoreGet(Event):
    __slots__ = ()


class _StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any):
        super().__init__(env, name="store-put")
        self.item = item


class Store:
    """FIFO object buffer with optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 name: str = "store"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[_StoreGet] = deque()
        self._putters: Deque[_StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; event fires once there is room."""
        ev = _StorePut(self.env, item)
        self._putters.append(ev)
        self._settle()
        return ev

    def get(self) -> Event:
        """Remove the oldest item; event fires with the item."""
        ev = _StoreGet(self.env, name="store-get")
        self._getters.append(ev)
        self._settle()
        return ev

    def cancel(self, event: Event) -> bool:
        """Withdraw a pending get/put (e.g. its waiter died); True if found."""
        for queue in (self._getters, self._putters):
            try:
                queue.remove(event)
                return True
            except ValueError:
                continue
        return False

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            while self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progress = True
