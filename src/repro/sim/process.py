"""Coroutine processes for the simulation kernel.

A process is a plain generator function that yields
:class:`~repro.sim.core.Event` objects::

    def worker(env):
        yield env.timeout(1.0)
        result = yield some_event
        ...

A :class:`Process` is itself an event, firing with the generator's return
value when it finishes (or failing with its uncaught exception), so
processes can wait on each other directly.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.core import Event, Environment, SimulationError, URGENT

__all__ = ["Interrupt", "Process"]


class Interrupt(Exception):
    """Thrown inside a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running simulation process wrapping a generator."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: Environment, generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"expected a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        super().__init__(env, name=getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        # Bootstrap: resume on the next queue step at the current time.
        init = Event(env, name="process-init")
        init.callbacks.append(self._resume)
        init.succeed(priority=URGENT)

    # -- public API ---------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        more than once before it handles the first interrupt queues them.
        """
        if self.triggered:
            raise SimulationError(f"{self.name}: cannot interrupt a finished process")
        exc = Interrupt(cause)
        waiting = self._waiting_on
        if waiting is not None and not waiting.processed:
            # Detach from the event we were waiting on.
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        carrier = Event(self.env, name="interrupt")
        carrier.callbacks.append(self._resume)
        carrier._defused = True
        carrier.fail(exc, priority=URGENT)

    def defuse(self) -> None:
        """Mark this process's failure as handled (no kernel re-raise)."""
        self._defused = True

    # -- stepping -------------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        event: Event | None = trigger
        while True:
            try:
                if event is None:
                    target = self._generator.send(None)
                elif event.ok:
                    target = self._generator.send(event.value)
                else:
                    # Mark the failure as handled by this process; if the
                    # process does not catch it, it propagates as *our*
                    # failure below.
                    event._defused = True
                    target = self._generator.throw(event.value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - process failure
                self.fail(exc)
                return

            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                )
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                except BaseException as e:  # noqa: BLE001
                    self.fail(e)
                return
            if target.env is not self.env:
                self.fail(SimulationError("yielded event from another environment"))
                return
            if target.processed:
                # Already fired: loop and feed the value straight back in.
                event = target
                continue
            self._waiting_on = target
            target.callbacks.append(self._resume)
            return
