"""Event queue, virtual clock, and the core event types.

Design notes
------------
The scheduler is a binary heap keyed on ``(time, priority, seq)``.  The
monotonically increasing ``seq`` makes the ordering a *total* order, so
simulations are bit-for-bit deterministic given the same inputs — a hard
requirement for the reproduction benchmarks (and for the hypothesis tests
that shrink failing schedules).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "SimulationError",
    "Timeout",
    "PENDING",
    "URGENT",
    "NORMAL",
]

#: Sentinel for an event that has not yet fired.
PENDING = object()

#: Scheduling priority for events that must pre-empt same-time events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

#: Optional callback ``fn(env)`` invoked when :meth:`Environment.run`
#: returns — installed by :mod:`repro.sim.stats` while a collector is
#: active, ``None`` otherwise (so the hot loop never pays for it).
RUN_LISTENER: Optional[Callable[["Environment"], None]] = None

#: Optional callback ``fn(env)`` invoked when an :class:`Environment` is
#: constructed — installed by :mod:`repro.profile` while a profiling
#: context is active so every environment built inside it (including the
#: per-cell environments of a sharded run) gets a profiler attached.
#: ``None`` otherwise; construction is cold, so the check is free.
ENV_CREATED_HOOK: Optional[Callable[["Environment"], None]] = None


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (not model errors)."""


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, is *triggered* when given a value (or an
    exception), and is *processed* once the environment has run its
    callbacks.  Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused",
                 "_recycle", "name")

    def __init__(self, env: "Environment", name: str | None = None):
        self.env = env
        #: Callables invoked with this event when it is processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._scheduled = False
        # True once some waiter has taken responsibility for the failure.
        self._defused = False
        self._recycle = False
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        ident = self.name if self.name else f"{id(self):#x}"
        return f"<{type(self).__name__} {ident} {state}>"

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.env._enqueue(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process that waits on the
        event, unless it was *defused* (e.g. captured by a future).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = exception
        self._ok = False
        self.env._enqueue(self, priority)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Timeouts are the single most-constructed object in a simulation, so
    the constructor bypasses :meth:`Event.__init__` (no name formatting,
    no super() dispatch) — a measurable share of event-loop time.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 priority: int = NORMAL):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.env = env
        self.callbacks = []
        self._scheduled = False
        self._defused = False
        self._recycle = False
        self.name = None
        self.delay = delay
        self._value = value
        self._ok = True
        env._enqueue(self, priority, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.processed else "ok"
        return f"<Timeout timeout({self.delay:g}) {state}>"


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` combinators.

    Already-processed constituents are resolved eagerly at construction
    (counting them separately from pending ones — a processed event must
    never drive the pending counter negative and fire an ``AllOf``
    early); pending constituents resolve through callbacks.
    """

    __slots__ = ("events", "_pending_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        # Any constituent that already failed decides the condition.
        for ev in self.events:
            if ev.processed and not ev.ok:
                self.fail(ev.value)
                return
        pending = [ev for ev in self.events if not ev.processed]
        self._pending_count = len(pending)
        if self._resolve_initial(n_processed_ok=len(self.events) - len(pending)):
            return
        for ev in pending:
            ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _resolve_initial(self, n_processed_ok: int) -> bool:
        """Decide the condition from construction-time state; True if done."""
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once *all* constituent events have fired (dict of values)."""

    __slots__ = ()

    def _resolve_initial(self, n_processed_ok: int) -> bool:
        if self._pending_count == 0:
            self.succeed(self._collect())
            return True
        return False

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending_count -= 1
        if self._pending_count <= 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as *any* constituent event fires."""

    __slots__ = ()

    def _resolve_initial(self, n_processed_ok: int) -> bool:
        if n_processed_ok > 0 or not self.events:
            self.succeed(self._collect())
            return True
        return False

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation environment: virtual clock plus event queue."""

    #: Upper bound on the recycled-timeout free list (see
    #: :meth:`timeout_pooled`); past this, extras are left to the GC.
    _POOL_LIMIT = 256

    def __init__(self, initial_time: float = 0.0, pooling: bool = True):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        #: Number of events processed so far (diagnostic).
        self.events_processed = 0
        #: Simulated GPUs attached to this environment (diagnostic
        #: registry for the ``--stats`` collector; see repro.sim.stats).
        self.gpus: list = []
        #: Free list of processed recyclable timeouts.
        self._tpool: list[Timeout] = []
        self._pooling = bool(pooling)
        #: Attached :class:`repro.profile.EventLoopProfiler`, or ``None``.
        #: While ``None`` (the default) the drain loops take the inlined
        #: fast path and :meth:`step` skips all instrumentation — the
        #: disabled profiler costs one attribute load per run/advance
        #: call, not per event.
        self._profiler = None
        if ENV_CREATED_HOOK is not None:
            ENV_CREATED_HOOK(self)

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    # -- event construction helpers ---------------------------------------
    def event(self, name: str | None = None) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def timeout_pooled(self, delay: float) -> Timeout:
        """A recyclable :class:`Timeout` drawn from a free list.

        Timeouts are the single most-constructed object in a simulation;
        hot internal paths (fluid-pool wakeups, serving loops, open-loop
        arrival generators) draw them here so the event loop stops paying
        an allocation + GC tax per event.  The contract: the *caller must
        not retain the event past its processing* — once its callbacks
        have run, the event goes back on the free list and will be reborn
        as a different timeout.  ``yield env.timeout_pooled(d)`` from a
        process is fine (the process drops the reference on resume);
        storing the event or reading ``.value`` later is not.
        """
        pool = self._tpool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay!r}")
            ev = pool.pop()
            ev.callbacks = []
            ev._value = None
            ev._scheduled = False
            ev._defused = False
            ev.delay = delay
            self._enqueue(ev, NORMAL, delay=delay)
            return ev
        ev = Timeout(self, delay)
        ev._recycle = self._pooling
        return ev

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator) -> "Process":
        """Start a new process from a generator (see :mod:`repro.sim.process`)."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- scheduling --------------------------------------------------------
    def _enqueue(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        seq = self._seq + 1
        self._seq = seq
        _heappush(self._queue, (self._now + delay, priority, seq, event))

    def schedule_batch(self, times, callback: Optional[Callable[["Event"], None]] = None,
                       priority: int = NORMAL) -> list[Event]:
        """Schedule one event per *absolute* timestamp in a single call.

        ``times`` is a sequence (list or numpy array) of non-decreasing
        absolute simulation times, all ``>= now``.  Each event fires with
        its timestamp as value and ``callback`` (if given) pre-installed.
        Returns the created events in input order.

        This is the bulk counterpart of :meth:`timeout`: instead of one
        ``heappush`` per event, the whole batch is appended to the queue
        and the heap invariant restored with a single ``heapify`` —
        O(n + m) for m pending events instead of O(n log m).  Sequence
        numbers are assigned in input order, so two same-time events from
        one batch process in input order, and an event enqueued *later*
        at the same timestamp (e.g. by a callback) processes after the
        rest of the batch — exactly as if each event had been scheduled
        individually at batch-creation time.
        """
        if hasattr(times, "tolist"):
            times = times.tolist()
        now = self._now
        queue = self._queue
        seq0 = seq = self._seq
        start = len(queue)
        events: list[Event] = []
        prev = now
        for t in times:
            if t < prev:
                # Discard the partial batch: nothing was heapified yet,
                # so the appended tail can simply be cut off.
                del queue[start:]
                self._seq = seq0
                raise SimulationError(
                    f"schedule_batch times must be non-decreasing and >= now "
                    f"(got {t!r} after {prev!r})"
                )
            prev = t
            ev = Event.__new__(Event)
            ev.env = self
            ev.callbacks = [callback] if callback is not None else []
            ev._value = t
            ev._ok = True
            ev._scheduled = True
            ev._defused = False
            ev._recycle = False
            ev.name = None
            seq += 1
            queue.append((t, priority, seq, ev))
            events.append(ev)
        self._seq = seq
        if events:
            heapq.heapify(queue)
        return events

    def schedule_callback(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` simulated seconds; returns the event."""
        ev = self.timeout(delay)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _prio, _seq, event = _heappop(self._queue)
        if when > self._now:
            self._now = when
        elif when < self._now - 1e-12:
            raise SimulationError("event scheduled in the past")
        callbacks, event.callbacks = event.callbacks, None
        self.events_processed += 1
        prof = self._profiler
        if prof is None:
            for cb in callbacks:
                cb(event)
        else:
            prof.record(self, when, event, callbacks)
        if not event._ok and not event._defused:
            # An un-waited-on failure must not pass silently.
            exc = event._value
            raise exc
        if event._recycle and len(self._tpool) < self._POOL_LIMIT:
            self._tpool.append(event)

    def _drain(self, horizon: float) -> None:
        """Inlined :meth:`step` loop: run every event due by ``horizon``.

        Semantically identical to ``while queue and queue[0][0] <=
        horizon: self.step()`` — same event order, same clock updates,
        same ``events_processed``, same recycling — but the per-event
        method call and attribute traffic are hoisted, and events sharing
        a timestamp are popped as a batch (the horizon comparison and
        clock update run once per distinct timestamp, not once per
        event).  Only valid for pure time horizons; ``until=Event`` /
        ``advance(stop=...)`` loops need a per-event stop check and use
        :meth:`step`.
        """
        queue = self._queue
        pop = _heappop
        tpool = self._tpool
        pool_limit = self._POOL_LIMIT
        while queue:
            when = queue[0][0]
            if when > horizon:
                return
            if when > self._now:
                self._now = when
            elif when < self._now - 1e-12:
                raise SimulationError("event scheduled in the past")
            while True:
                event = pop(queue)[3]
                callbacks, event.callbacks = event.callbacks, None
                self.events_processed += 1
                for cb in callbacks:
                    cb(event)
                if not event._ok and not event._defused:
                    raise event._value
                if event._recycle and len(tpool) < pool_limit:
                    tpool.append(event)
                if not queue or queue[0][0] != when:
                    break

    def _drain_until_event(self, stop_holder: list) -> None:
        """Inlined :meth:`step` loop halting once ``stop_holder`` fills.

        Same per-event semantics as :meth:`step`; the stop check must
        stay per-event (the event *after* the stop event, even at the
        same timestamp, must not be processed early).
        """
        queue = self._queue
        pop = _heappop
        tpool = self._tpool
        pool_limit = self._POOL_LIMIT
        while queue and not stop_holder:
            when = queue[0][0]
            if when > self._now:
                self._now = when
            elif when < self._now - 1e-12:
                raise SimulationError("event scheduled in the past")
            event = pop(queue)[3]
            callbacks, event.callbacks = event.callbacks, None
            self.events_processed += 1
            for cb in callbacks:
                cb(event)
            if not event._ok and not event._defused:
                raise event._value
            if event._recycle and len(tpool) < pool_limit:
                tpool.append(event)

    def advance(self, horizon: float, stop: Optional[Event] = None) -> bool:
        """Step every event due at or before ``horizon``; clock never jumps.

        The epoch-barrier primitive of the sharded engine
        (:mod:`repro.sim.sharded`).  Unlike ``run(until=horizon)`` the
        clock is **not** advanced to the horizon afterwards — ``now``
        stays at the last processed event — so a simulation advanced in
        epochs sees the *identical* event sequence, final clock, and
        ``events_processed`` as one advanced in a single ``run(until=
        stop_event)`` call: the barrier only pauses the loop, it never
        perturbs it.

        With ``stop`` given, processing halts as soon as that event is
        processed (exactly ``run(until=stop)``'s condition) and the call
        returns ``True``; otherwise it returns ``False`` once every
        event due by ``horizon`` has been processed.  ``RUN_LISTENER``
        is not invoked (an epoch is a fragment of a run, not a run).
        """
        horizon = float(horizon)
        queue, step = self._queue, self.step
        if stop is None:
            if self._profiler is None:
                self._drain(horizon)
            else:
                while queue and queue[0][0] <= horizon:
                    step()
            return False
        if stop.processed:
            return True
        fired: list[Event] = []
        stop.callbacks.append(fired.append)
        while queue and queue[0][0] <= horizon and not fired:
            step()
        return bool(fired)

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or event fires.

        Returns the value of ``until`` when it is an event.
        """
        try:
            return self._run(until)
        finally:
            if RUN_LISTENER is not None:
                RUN_LISTENER(self)

    def _run(self, until: float | Event | None = None) -> Any:
        if isinstance(until, Event):
            stop = until
            stop_holder: list[Any] = []

            def _capture(ev: Event) -> None:
                stop_holder.append(ev)

            if stop.processed:
                return stop.value if stop.ok else _raise(stop.value)
            stop.callbacks.append(_capture)
            if self._profiler is None:
                self._drain_until_event(stop_holder)
            else:
                queue, step = self._queue, self.step
                while queue and not stop_holder:
                    step()
            if not stop_holder:
                raise SimulationError(
                    "event queue drained before the 'until' event fired"
                )
            return stop.value if stop.ok else _raise(stop.value)

        horizon = float("inf") if until is None else float(until)
        if horizon != float("inf") and horizon < self._now:
            raise ValueError(f"until={horizon!r} is in the past (now={self._now!r})")
        if self._profiler is None:
            self._drain(horizon)
        else:
            queue, step = self._queue, self.step
            while queue and queue[0][0] <= horizon:
                step()
        if horizon != float("inf"):
            self._now = max(self._now, horizon)
        return None


def _raise(exc: BaseException) -> Any:
    raise exc
