"""Sharded parallel simulation with a deterministic epoch-barrier merge.

The single-process event loop tops out around ~45k events/sec; fleet-
and cluster-scale scenarios need an order of magnitude more.  Devices
are already isolated fault/allocation domains in this codebase, so the
scale-out unit is the **cell**: one whole-device sub-simulation (its
own :class:`~repro.sim.core.Environment`, GPU, replicas, clients, and
RNG substreams) with *no* shared mutable state.  Cells are grouped onto
long-lived worker processes ("shards",
:class:`~repro.runner.shardpool.ShardWorkerPool`) and advanced in
lockstep to fixed **epoch barriers**; at each barrier every cell ships
its buffered completion events (and receives optional cross-shard
commands from the coordinator's ``on_epoch`` hook).

Why the cell is a whole device: the fluid-flow sharing model applies
incremental ``work -= rate * dt`` drains at every pool event, so float
rounding inside a device depends on the exact cross-tenant event
chunking — carving a device's MIG instances into separate environments
would diverge in ulps.  Whole devices are genuinely independent, so the
decomposition is *exact*, not approximate.

Why merge by replay: P² markers, Kahan compensation, and reservoir
coin flips are order-sensitive — no O(1) accumulator-state merge is
bit-exact.  Instead each cell buffers its completion events per epoch
and the coordinator replays them in the canonical ``(time, cell_id,
within-cell seq)`` order (:func:`~repro.telemetry.streaming.
merge_event_streams`, one numpy lexsort) through fresh accumulators.
The canonical key mentions neither shards nor workers, so the merged
result is a deterministic function of **(seed, config)** alone —
invariant in shard count, worker scheduling, epoch length, and
in-process vs pooled execution.  ``tests/sim/test_sharded_identity.py``
is the differential harness proving this bit-exactly against the
unsharded engines.

Cell protocol (duck-typed; scenario cells live in
:mod:`repro.workloads.shardcells`):

- ``advance(horizon) -> bool`` — run to the barrier (or until the
  cell's stop condition fires); True once finished;
- ``drain_events() -> list[tuple]`` — time-ordered events buffered
  since the last barrier, each tuple led by its timestamp;
- ``result() -> dict`` — JSON-ready per-cell report;
- ``apply_command(command)`` — optional; receives coordinator commands.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.telemetry.streaming import merge_event_streams

__all__ = ["CellSpec", "ShardedSimulation"]


class CellSpec:
    """Picklable recipe for one cell: ``factory(**kwargs)``.

    The factory must be a module-level callable (picklable by
    reference) so a respawned worker can rebuild — and
    deterministically replay — its cells from the spec alone.
    """

    __slots__ = ("factory", "kwargs", "name")

    def __init__(self, factory: Callable[..., Any],
                 kwargs: Optional[dict] = None, name: Optional[str] = None):
        if not callable(factory):
            raise TypeError("factory must be callable")
        self.factory = factory
        self.kwargs = dict(kwargs or {})
        self.name = name or getattr(factory, "__name__", "cell")

    def build(self) -> Any:
        return self.factory(**self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CellSpec {self.name}>"


class ShardedSimulation:
    """Coordinator: epoch-barrier lockstep over independent cells.

    Parameters
    ----------
    specs:
        One :class:`CellSpec` per cell.  Cell ids are the positions in
        this sequence — the merge's canonical tie-break order.
    epoch_seconds:
        Barrier spacing in simulated seconds.  Any positive value
        yields the same merged result (barriers pause the per-cell
        event loop without perturbing it); it only trades round-trip
        overhead against cross-shard command latency.
    on_epoch:
        Optional coordinator hook ``on_epoch(epoch_index, snapshots)``
        called after every barrier with ``{cell_id: {"events",
        "finished"}}``; may return ``{cell_id: command}`` to deliver —
        via ``apply_command`` — before the next epoch.  This is the
        cross-shard interaction channel (fleet-level routing or
        autoscaling decisions); commands are logged with the epoch so
        crash replay reproduces them.
    max_epochs:
        Runaway guard for cells that never finish.
    """

    def __init__(self, specs: Sequence[CellSpec], epoch_seconds: float,
                 on_epoch: Optional[Callable[[int, dict], Optional[dict]]]
                 = None,
                 max_epochs: int = 1_000_000):
        if not specs:
            raise ValueError("need at least one cell")
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if max_epochs < 1:
            raise ValueError("max_epochs must be positive")
        self.specs = list(specs)
        self.epoch_seconds = float(epoch_seconds)
        self.on_epoch = on_epoch
        self.max_epochs = int(max_epochs)

    # -- execution ----------------------------------------------------------
    def run(self, n_shards: int = 1,
            use_processes: Optional[bool] = None,
            mp_context: Optional[str] = None) -> dict:
        """Run every cell to completion; return cells + merged events.

        ``n_shards`` workers share the cells round-robin (cell ``i`` →
        shard ``i % n_shards``).  ``use_processes`` defaults to
        ``n_shards > 1``; with ``False`` the same epoch loop runs
        in-process (useful for tests and one-shard runs — the results
        are identical either way, which the differential tests assert).

        Returns ``{"cells": [result, ...] in cell order, "events":
        canonically merged event tuples, "epochs": barrier count,
        "n_shards": ..., "execution": {...}}`` — everything outside
        ``"execution"`` (pids, RSS, respawns) is deterministic in
        (seed, config).
        """
        n_cells = len(self.specs)
        n_shards = max(1, min(int(n_shards), n_cells))
        if use_processes is None:
            use_processes = n_shards > 1
        if use_processes:
            return self._run_pooled(n_shards, mp_context)
        return self._run_inline(n_shards)

    def _loop(self, step_epoch: Callable[[float, dict], dict]) -> tuple:
        """The shared barrier loop; returns (buffers, epochs)."""
        buffers: dict[int, list] = {i: [] for i in range(len(self.specs))}
        finished = {i: False for i in range(len(self.specs))}
        commands: dict = {}
        epoch = 0
        while not all(finished.values()):
            if epoch >= self.max_epochs:
                raise RuntimeError(
                    f"cells {[i for i, f in finished.items() if not f]} "
                    f"still running after {epoch} epochs")
            t_end = self.epoch_seconds * (epoch + 1)
            snapshots = step_epoch(t_end, commands)
            for cell_id, snap in snapshots.items():
                buffers[cell_id].extend(snap["events"])
                finished[cell_id] = snap["finished"]
            commands = {}
            if self.on_epoch is not None:
                commands = self.on_epoch(epoch, snapshots) or {}
            epoch += 1
        return buffers, epoch

    def _run_inline(self, n_shards: int) -> dict:
        cells = [spec.build() for spec in self.specs]
        done = [False] * len(cells)

        def step_epoch(t_end: float, commands: dict) -> dict:
            snapshots = {}
            for cell_id, cell in enumerate(cells):
                if commands and cell_id in commands:
                    cell.apply_command(commands[cell_id])
                if not done[cell_id]:
                    done[cell_id] = bool(cell.advance(t_end))
                snapshots[cell_id] = {"events": cell.drain_events(),
                                      "finished": done[cell_id]}
            return snapshots

        buffers, epochs = self._loop(step_epoch)
        return self._finish(
            {i: cell.result() for i, cell in enumerate(cells)},
            buffers, epochs, n_shards,
            execution={"processes": False, "worker_pids": [],
                       "worker_rss_growth_kb": [], "worker_respawns": []})

    def _run_pooled(self, n_shards: int,
                    mp_context: Optional[str]) -> dict:
        from repro.runner.shardpool import ShardWorkerPool

        assignments: list[list[tuple]] = [[] for _ in range(n_shards)]
        for cell_id, spec in enumerate(self.specs):
            assignments[cell_id % n_shards].append((cell_id, spec))
        with ShardWorkerPool(assignments, mp_context=mp_context) as pool:
            buffers, epochs = self._loop(pool.step_epoch)
            results = pool.results()
        return self._finish(
            results["cells"], buffers, epochs, n_shards,
            execution={"processes": True,
                       "worker_pids": results["worker_pids"],
                       "worker_rss_growth_kb":
                           results["worker_rss_growth_kb"],
                       "worker_respawns": results["worker_respawns"]})

    def _finish(self, cell_results: dict, buffers: dict, epochs: int,
                n_shards: int, execution: dict) -> dict:
        return {
            "cells": [cell_results[i] for i in range(len(self.specs))],
            "events": merge_event_streams(sorted(buffers.items())),
            "epochs": epochs,
            "n_shards": n_shards,
            "execution": execution,
        }
