"""Lightweight simulation-wide perf counters for ``repro ... --stats``.

A :class:`SimStats` collector, installed with :func:`collecting`, tallies
events processed and allocator work across every simulation that runs
while it is active — sourced from ``Environment.events_processed`` and
the per-device ``SimulatedGPU.alloc_calls`` family — so a perf
regression shows up as a one-line summary without attaching a profiler.

The hook is :data:`repro.sim.core.RUN_LISTENER`, called whenever
``Environment.run`` returns; it is ``None`` unless a collector is
active, so simulations outside a ``collecting()`` block pay nothing.
Simulations fanned out to *worker processes* by the sweep runner are not
visible to the parent's collector — run with ``--jobs 1`` for complete
counts (cache hits execute no simulation and contribute zero either
way).
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.sim import core as _core

__all__ = ["SimStats", "collecting"]


class SimStats:
    """Counters accumulated over every in-process simulation run."""

    def __init__(self) -> None:
        self.sims = 0
        self.events = 0
        self.alloc_calls = 0
        self.alloc_group_recomputes = 0
        self.alloc_group_reuses = 0
        self.alloc_fast_path = 0
        self.wall_seconds = 0.0
        self._t0 = time.perf_counter()

    # -- collection ---------------------------------------------------------
    def note_env(self, env) -> None:
        """Fold one environment's counters in (delta since last seen).

        ``run()`` may be called several times on one environment (warm-up
        then drain); per-env high-water marks make each call contribute
        only its delta.
        """
        seen = getattr(env, "_stats_seen", None)
        if seen is None:
            self.sims += 1
            seen = {"events": 0}
        self.events += env.events_processed - seen["events"]
        seen["events"] = env.events_processed
        for gpu in env.gpus:
            key = f"gpu{id(gpu)}"
            last = seen.get(key, (0, 0, 0, 0))
            now = (gpu.alloc_calls, gpu.alloc_group_recomputes,
                   gpu.alloc_group_reuses, gpu.alloc_fast_path)
            self.alloc_calls += now[0] - last[0]
            self.alloc_group_recomputes += now[1] - last[1]
            self.alloc_group_reuses += now[2] - last[2]
            self.alloc_fast_path += now[3] - last[3]
            seen[key] = now
        env._stats_seen = seen

    def close(self) -> None:
        self.wall_seconds = time.perf_counter() - self._t0

    # -- reporting ----------------------------------------------------------
    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds

    def summary_line(self) -> str:
        """The one-line report printed by the CLI under ``--stats``."""
        cached = self.alloc_group_reuses + self.alloc_fast_path
        denom = self.alloc_group_recomputes + cached
        reuse = cached / denom if denom else 0.0
        return (
            f"[stats] sims={self.sims} events={self.events:,} "
            f"events/sec={self.events_per_sec:,.0f} "
            f"alloc_calls={self.alloc_calls:,} "
            f"group_recomputes={self.alloc_group_recomputes:,} "
            f"alloc_reuse={reuse:.0%} wall={self.wall_seconds:.2f}s"
        )


@contextmanager
def collecting():
    """Install a :class:`SimStats` collector for the enclosed block.

    Nested collectors are not supported (the innermost wins); the CLI
    uses one per command group.
    """
    stats = SimStats()
    prev = _core.RUN_LISTENER
    _core.RUN_LISTENER = stats.note_env
    try:
        yield stats
    finally:
        _core.RUN_LISTENER = prev
        stats.close()
