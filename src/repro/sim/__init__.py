"""Discrete-event simulation engine.

A small, deterministic, SimPy-flavoured kernel used by every other
subsystem in :mod:`repro`.  Processes are plain generator functions that
``yield`` :class:`~repro.sim.core.Event` objects; the
:class:`~repro.sim.core.Environment` advances a virtual clock and resumes
processes when the events they wait on fire.

The one piece that goes beyond a classic DES kernel is
:class:`~repro.sim.fluid.FluidPool`: a rate-based ("fluid") task pool in
which concurrently-resident tasks progress at allocation-dependent rates.
The GPU simulator uses it to model proportional memory-bandwidth sharing
between co-resident kernels — the mechanism behind the paper's MPS-vs-MIG
results.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    SimulationError,
    Timeout,
)
from repro.sim.process import Interrupt, Process
from repro.sim.resources import Resource, Store
from repro.sim.fluid import FluidPool, FluidTask
from repro.sim.rng import RngRegistry, substream_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "FluidPool",
    "FluidTask",
    "Interrupt",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Store",
    "Timeout",
    "substream_seed",
]
