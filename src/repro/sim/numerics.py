"""Numerically-robust accumulation primitives for long simulations.

At millions of events the conservation accumulators (work drained
through a :class:`~repro.sim.fluid.FluidPool`, a device's utilisation
integrals) add tiny increments to large running totals; a naive float
sum loses the increments once the total outgrows them by ~2^53 and the
conservation checks start failing.  Kahan (compensated) summation keeps
the running error at O(1) ulp independent of the number of additions,
at the cost of three extra flops per add.
"""

from __future__ import annotations

__all__ = ["KahanSum"]


class KahanSum:
    """Compensated (Kahan) accumulator: ``sum.add(x)``; read ``sum.value``.

    The compensation term carries the low-order bits the running total
    cannot represent, so adding a million ``1e-9`` increments to ``1e9``
    loses nothing (the naive sum loses all of them).
    """

    __slots__ = ("value", "_comp")

    def __init__(self, value: float = 0.0):
        self.value = float(value)
        self._comp = 0.0

    def add(self, x: float) -> None:
        y = x - self._comp
        t = self.value + y
        self._comp = (t - self.value) - y
        self.value = t

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KahanSum({self.value!r})"
