"""Rate-based ("fluid") task pool.

Models a set of concurrently-resident tasks whose progress rates depend on
how a shared resource is divided among them *right now*.  Whenever the set
of resident tasks changes, an allocator callback recomputes every task's
rate and the pool reschedules the next completion.

This is the standard fluid-flow approximation used in network and GPU
sharing simulators: between membership changes, rates are constant, so the
next completion time is exact and the event count stays proportional to
the number of tasks, not to the simulated duration.

The GPU device model layers a roofline allocator on top: a kernel's rate
is ``min(compute_rate(SMs), memory_rate(bandwidth share))``, and the
bandwidth share is recomputed by water-filling on every membership change
(see :mod:`repro.gpu.device`).

Storage layout
--------------
Resident work/threshold live in dense parallel lists indexed by a
per-task *slot* (swap-remove on eviction keeps them dense), with
``FluidTask.work`` as a property over the slot so allocators and
observers see exactly the attribute-era interface.  ``FluidTask.rate``
stays a plain attribute — allocators write it once per task per
membership change, so routing those writes through a descriptor would
tax every allocator invocation — and the pool snapshots rates into the
dense slot list right after each allocator run (rates only change
inside allocator invocations, so the snapshot stays valid between
membership changes).  The two
per-event hot loops — draining progress in :meth:`FluidPool._advance`
and scanning for the earliest completion in
:meth:`FluidPool._schedule_wakeup` — are *adaptive*: below
``_VEC_MIN`` resident tasks they run the original scalar loops over the
slot lists (numpy's per-call dispatch overhead exceeds the loop cost
for small pools), at or above it they run vectorized numpy kernels.
The per-task float math is identical in both regimes (same elementwise
operations, and the wakeup horizon is an order-free ``min``), so which
regime ran is unobservable in any deterministic payload; only the
``work_drained`` *total* differs in accumulation order on the vector
path (pairwise ``np.add.reduce``), and that total is tolerance-checked
by the conservation tests, never part of a bit-exact payload.
"""

from __future__ import annotations

import itertools
import math
import operator
from typing import Any, Callable, Optional

import numpy as np

from repro.sim.core import Environment, Event, SimulationError
from repro.sim.numerics import KahanSum

__all__ = ["FluidTask", "FluidPool"]

#: Relative tolerance for treating remaining work as drained.
_EPS = 1e-9

#: Pool size at which the hot loops switch to numpy kernels.
_VEC_MIN = 64

_task_ids = itertools.count()


class FluidTask:
    """A unit of divisible work progressing at a pool-assigned rate."""

    __slots__ = ("_work", "total_work", "rate", "done", "meta", "tid",
                 "_pool", "_thresh", "_slot", "_aseq")

    def __init__(self, env: Environment, work: float, meta: Any = None):
        if work < 0:
            raise ValueError(f"negative work {work!r}")
        self.total_work = float(work)
        # Drain threshold, hoisted out of the advance loop (total_work
        # is fixed at construction, so this is the same float the loop
        # used to recompute per task per event).
        self._thresh = _EPS * max(self.total_work, 1.0)
        #: Remaining work, in abstract units (slot-resident while pooled).
        self._work = float(work)
        #: Current progress rate (units/second); set by the pool allocator.
        #: Deliberately a plain attribute, not a slot property: allocator
        #: hot loops write it for every resident task on every membership
        #: change, and the pool re-snapshots its dense rate list after
        #: each allocator run instead.
        self.rate = 0.0
        #: Fires (with this task) when the work drains.
        self.done: Event = env.event(name="fluid-done")
        self.meta = meta
        self.tid = next(_task_ids)
        self._pool: Optional["FluidPool"] = None
        self._slot = -1
        self._aseq = -1

    @property
    def work(self) -> float:
        """Remaining work.  Reads the pool slot while resident."""
        pool = self._pool
        if pool is None:
            return self._work
        return pool._w[self._slot]

    @work.setter
    def work(self, value: float) -> None:
        pool = self._pool
        if pool is None:
            self._work = value
        else:
            pool._w[self._slot] = value
            if pool._w_sync:
                pool._w_arr[self._slot] = value

    @property
    def progress(self) -> float:
        """Fraction of work completed, in [0, 1]."""
        if self.total_work == 0:
            return 1.0
        return 1.0 - self.work / self.total_work

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FluidTask #{self.tid} work={self.work:.4g}/{self.total_work:.4g}"
            f" rate={self.rate:.4g}>"
        )


def _aseq_key(task: FluidTask) -> int:
    return task._aseq


class FluidPool:
    """A pool of fluid tasks sharing a resource via an allocator callback.

    Parameters
    ----------
    env:
        Simulation environment.
    allocator:
        Called with the list of resident tasks (sorted by admission order)
        whenever membership changes; must set ``task.rate`` on each.  Rates
        must be non-negative and may be zero (a starved task simply does
        not progress).
    on_change:
        Optional ``fn(task, added)`` invoked synchronously at every
        membership mutation (admission: ``added=True``; completion or
        cancellation: ``added=False``), always *before* the allocator
        runs for that change.  Incremental allocators use it to maintain
        residency indexes without re-deriving them from the task list on
        every call.
    """

    def __init__(self, env: Environment,
                 allocator: Callable[[list[FluidTask]], None],
                 name: str = "fluid-pool",
                 on_change: Optional[Callable[[FluidTask, bool], None]] = None):
        self.env = env
        self.allocator = allocator
        self.name = name
        self.on_change = on_change
        # Resident tasks keyed by tid.  Python dicts preserve insertion
        # order, so iteration is admission order (the allocator contract)
        # while removal is O(1) — the old list-based pool paid an O(n)
        # ``list.remove`` per completion/cancellation.
        self._tasks: dict[int, FluidTask] = {}
        # Dense parallel slot lists (see module docstring): _slot_task[i]
        # is the task in slot i; _w/_r/_th hold its remaining work, rate,
        # and drain threshold.  Eviction swap-removes the last slot into
        # the hole, so [0:n) is always dense.  _r is a snapshot of the
        # tasks' ``rate`` attributes, rebuilt once per allocator run
        # (rates never change between membership changes).
        self._w: list[float] = []
        self._r: list[float] = []
        self._th: list[float] = []
        self._slot_task: list[FluidTask] = []
        # Lazily-synced ndarray mirrors of the slot lists for the
        # vector regime.  The lists stay canonical; each mirror carries
        # a sync flag — True means its [0:n) prefix matches the list
        # and is kept current by O(1) element writes in add/_evict_slot
        # (and in-place updates in the vector _advance), False means it
        # is bulk-refreshed from the list on next vector use.  This
        # turns the former per-event ``np.asarray(list)`` rebuilds into
        # occasional bulk copies plus cheap incremental maintenance.
        self._w_arr = np.empty(0)
        self._r_arr = np.empty(0)
        self._th_arr = np.empty(0)
        self._w_sync = False
        self._r_sync = False
        self._th_sync = False
        # Admission sequence: slot order is scrambled by swap-removes,
        # so batch completions are re-sorted by this before being
        # finalised (completions were and are observable in admission
        # order through on_change and done-callback ordering).
        self._aseq = 0
        self._last_update = env.now
        # Generation counter: each reallocation invalidates the wakeups
        # scheduled by earlier generations (cheaper than heap removal).
        self._gen = 0
        # External capacity changes (poke) bump the epoch; together with
        # the membership revision it decides whether cached rates are
        # still valid, letting _reallocate skip the allocator entirely.
        # The revision counter replaces a per-call tuple of resident
        # tids: tids are unique and admission-monotonic, so "no
        # mutation since the last allocation" is exactly "same resident
        # sequence" — at O(1) instead of O(#tasks) per event.
        self._epoch = 0
        self._members_rev = 0
        self._alloc_rev = -1
        self._alloc_epoch = 0
        self._wakeup_pending = False
        # Compensated: at 1M+ tasks the naive running sum drifts enough
        # to fail the conservation checks (see repro.sim.numerics).
        self._work_drained = KahanSum()

    @property
    def work_drained(self) -> float:
        """Total work drained through this pool (conservation checks)."""
        return self._work_drained.value

    # -- public API ---------------------------------------------------------
    @property
    def tasks(self) -> tuple[FluidTask, ...]:
        return tuple(self._tasks.values())

    def __len__(self) -> int:
        return len(self._tasks)

    def add(self, task: FluidTask) -> FluidTask:
        """Admit a task; returns it (its ``done`` event fires on drain)."""
        if task._pool is not None:
            raise SimulationError("task already resident in a pool")
        self._advance()
        if task._work <= task._thresh:
            # Drains instantly: complete without ever becoming resident
            # (residency would double-fire ``done`` on the next advance).
            task._work = 0.0
            self._finish(task)
            return task
        slot = task._slot = len(self._slot_task)
        task.rate = 0.0  # not progressing until the allocator assigns one
        self._w.append(task._work)
        self._r.append(0.0)
        self._th.append(task._thresh)
        self._slot_task.append(task)
        # Extend any in-sync mirror in place; on capacity exhaustion
        # just mark it stale (the next vector use regrows + refreshes).
        if self._w_sync:
            if self._w_arr.size > slot:
                self._w_arr[slot] = task._work
            else:
                self._w_sync = False
        if self._r_sync:
            if self._r_arr.size > slot:
                self._r_arr[slot] = 0.0
            else:
                self._r_sync = False
        if self._th_sync:
            if self._th_arr.size > slot:
                self._th_arr[slot] = task._thresh
            else:
                self._th_sync = False
        task._aseq = self._aseq
        self._aseq += 1
        task._pool = self
        self._tasks[task.tid] = task
        self._members_rev += 1
        if self.on_change is not None:
            self.on_change(task, True)
        self._reallocate()
        return task

    def cancel(self, task: FluidTask) -> float:
        """Evict a task before completion; returns remaining work."""
        if task._pool is not self:
            raise SimulationError("task not resident in this pool")
        self._advance()
        if task._pool is not self:
            # The pending progress drained it: _advance already finished
            # it (done fired, membership updated) — nothing left to evict.
            return 0.0
        self._evict_slot(task)
        del self._tasks[task.tid]
        self._members_rev += 1
        if self.on_change is not None:
            self.on_change(task, False)
        task._pool = None
        task.rate = 0.0
        self._reallocate()
        return task._work

    def poke(self) -> None:
        """Force a reallocation (e.g. after an external capacity change)."""
        if not self._tasks:
            # Empty-to-empty: capacity changes cannot affect anyone, and
            # _advance has nothing to drain.  Skip the allocator round
            # trip entirely (a previously hot path for group churn).
            self._last_update = self.env.now
            return
        self._epoch += 1
        self._advance()
        self._reallocate()

    def utilization_snapshot(self) -> float:
        """Sum of current rates — callers normalise by device capacity."""
        return sum(t.rate for t in self._tasks.values())

    # -- internals ------------------------------------------------------------
    def _w_view(self) -> np.ndarray:
        """The [0:n) work prefix as an ndarray, refreshed if stale."""
        n = len(self._slot_task)
        arr = self._w_arr
        if arr.size < n:
            arr = self._w_arr = np.empty(max(16, 2 * n))
            self._w_sync = False
        if not self._w_sync:
            arr[:n] = self._w
            self._w_sync = True
        return arr[:n]

    def _r_view(self) -> np.ndarray:
        n = len(self._slot_task)
        arr = self._r_arr
        if arr.size < n:
            arr = self._r_arr = np.empty(max(16, 2 * n))
            self._r_sync = False
        if not self._r_sync:
            arr[:n] = self._r
            self._r_sync = True
        return arr[:n]

    def _th_view(self) -> np.ndarray:
        n = len(self._slot_task)
        arr = self._th_arr
        if arr.size < n:
            arr = self._th_arr = np.empty(max(16, 2 * n))
            self._th_sync = False
        if not self._th_sync:
            arr[:n] = self._th
            self._th_sync = True
        return arr[:n]

    def _evict_slot(self, task: FluidTask) -> None:
        """Swap-remove ``task``'s slot, writing its work back to the task."""
        i = task._slot
        task._work = self._w[i]
        last = len(self._slot_task) - 1
        if i != last:
            self._w[i] = self._w[last]
            self._r[i] = self._r[last]
            self._th[i] = self._th[last]
            moved = self._slot_task[last]
            self._slot_task[i] = moved
            moved._slot = i
            # Mirror the swap into any in-sync array prefix.
            if self._w_sync:
                self._w_arr[i] = self._w_arr[last]
            if self._r_sync:
                self._r_arr[i] = self._r_arr[last]
            if self._th_sync:
                self._th_arr[i] = self._th_arr[last]
        self._w.pop()
        self._r.pop()
        self._th.pop()
        self._slot_task.pop()
        task._slot = -1

    def _advance(self) -> None:
        """Apply progress at current rates from the last update until now."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        n = len(self._slot_task)
        if dt <= 0 or n == 0:
            return
        w = self._w
        r = self._r
        th = self._th
        finished: Optional[list[FluidTask]] = None
        if n < _VEC_MIN:
            drained_total = 0.0
            for i in range(n):
                rate = r[i]
                if rate <= 0:
                    continue
                work = w[i]
                drained = rate * dt
                if drained > work:
                    drained = work
                work -= drained
                drained_total += drained
                if work <= th[i]:
                    work = 0.0
                    if finished is None:
                        finished = []
                    finished.append(self._slot_task[i])
                w[i] = work
            self._work_drained.add(drained_total)
            self._w_sync = False  # list mutated behind the mirror
        else:
            wa = self._w_view()
            # drained = min(r*dt, w); w -= drained: the same elementwise
            # float operations as the scalar loop above, so every
            # per-task work value is bit-identical either way.
            drained = self._r_view() * dt
            np.minimum(drained, wa, out=drained)
            wa -= drained  # in place: the work mirror stays in sync
            # Sequential left-to-right sum (np.add.reduce is pairwise,
            # which would drift from the scalar loop's running total;
            # the zero entries of starved tasks are exact no-ops).
            self._work_drained.add(float(np.add.accumulate(drained)[-1]))
            done_idx = np.flatnonzero(wa <= self._th_view())
            w[:] = wa.tolist()
            if done_idx.size:
                finished = [self._slot_task[i] for i in done_idx]
                for i in done_idx.tolist():
                    w[i] = 0.0
                    wa[i] = 0.0
        if finished is not None:
            if len(finished) > 1:
                finished.sort(key=_aseq_key)  # admission order, as before
            on_change = self.on_change
            for task in finished:
                self._evict_slot(task)
                task._work = 0.0
                del self._tasks[task.tid]
                self._members_rev += 1
                if on_change is not None:
                    on_change(task, False)
                self._finish(task)

    def _finish(self, task: FluidTask) -> None:
        task._pool = None
        task.rate = 0.0
        task._slot = -1
        task.done.succeed(task)

    def _reallocate(self) -> None:
        if not self._tasks:
            self._gen += 1  # invalidate any stale wakeup
            self._alloc_rev = -1
            self._wakeup_pending = False
            return
        if (self._members_rev == self._alloc_rev
                and self._epoch == self._alloc_epoch):
            # Same resident set under the same external capacity: the
            # allocator would reproduce the rates every task already
            # carries, so skip it (and the water-filling behind it).
            if self._wakeup_pending:
                return  # the scheduled completion wakeup is still exact
            self._schedule_wakeup()
            return
        self.allocator(list(self._tasks.values()))
        # Snapshot the freshly assigned rates into slot order.  Rates
        # only change inside allocator invocations (verified contract:
        # every writer in the tree is an allocator callback), so this
        # one O(n) gather replaces a descriptor write per rate set.
        self._r = [t.rate for t in self._slot_task]
        self._r_sync = False
        self._alloc_rev = self._members_rev
        self._alloc_epoch = self._epoch
        self._schedule_wakeup()

    def _schedule_wakeup(self) -> None:
        """Arm the wakeup for the earliest completion at current rates."""
        self._gen += 1
        self._wakeup_pending = False
        n = len(self._slot_task)
        if n == 0:
            return
        # The scan doubles as rate validation (the former separate
        # O(#tasks) pass over the allocator's output).
        horizon = math.inf
        if n < _VEC_MIN:
            w = self._w
            r = self._r
            rmin = min(r)
            if rmin > 0.0:
                # Every rate is positive: the horizon is the smallest
                # work/rate quotient.  ``min`` over a C-level ``map``
                # compares the same divisions the explicit scan would,
                # so the chosen float is identical.
                horizon = min(map(operator.truediv, w, r))
            elif rmin < 0.0:
                bad = next(t for t, rate in zip(self._slot_task, r)
                           if rate < 0)
                raise SimulationError(
                    f"allocator produced negative rate for {bad!r}"
                )
            else:
                for i in range(n):
                    rate = r[i]
                    if rate > 0:
                        h = w[i] / rate
                        if h < horizon:
                            horizon = h
        else:
            ra = self._r_view()
            if float(ra.min()) < 0.0:
                bad = self._slot_task[int(np.flatnonzero(ra < 0.0)[0])]
                raise SimulationError(
                    f"allocator produced negative rate for {bad!r}"
                )
            pos = ra > 0.0
            if pos.any():
                # min over the same per-task work/rate quotients the
                # scalar scan compares — order-free, same float.
                horizon = float(np.min(self._w_view()[pos] / ra[pos]))
        if horizon is math.inf or horizon == math.inf:
            return  # every task starved; an external poke must revive them
        gen = self._gen
        # Pooled: nothing retains the wakeup once it fires (the closure
        # below captures only the generation counter).
        wakeup = self.env.timeout_pooled(max(horizon, 0.0))
        self._wakeup_pending = True

        def _on_wakeup(_ev: Event) -> None:
            if gen != self._gen:
                return  # superseded by a later reallocation
            self._wakeup_pending = False
            self._advance()
            self._reallocate()

        wakeup.callbacks.append(_on_wakeup)
