"""Rate-based ("fluid") task pool.

Models a set of concurrently-resident tasks whose progress rates depend on
how a shared resource is divided among them *right now*.  Whenever the set
of resident tasks changes, an allocator callback recomputes every task's
rate and the pool reschedules the next completion.

This is the standard fluid-flow approximation used in network and GPU
sharing simulators: between membership changes, rates are constant, so the
next completion time is exact and the event count stays proportional to
the number of tasks, not to the simulated duration.

The GPU device model layers a roofline allocator on top: a kernel's rate
is ``min(compute_rate(SMs), memory_rate(bandwidth share))``, and the
bandwidth share is recomputed by water-filling on every membership change
(see :mod:`repro.gpu.device`).
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Callable, Optional

from repro.sim.core import Environment, Event, SimulationError

__all__ = ["FluidTask", "FluidPool"]

#: Relative tolerance for treating remaining work as drained.
_EPS = 1e-9

_task_ids = itertools.count()


class FluidTask:
    """A unit of divisible work progressing at a pool-assigned rate."""

    __slots__ = ("work", "total_work", "rate", "done", "meta", "tid", "_pool")

    def __init__(self, env: Environment, work: float, meta: Any = None):
        if work < 0:
            raise ValueError(f"negative work {work!r}")
        self.total_work = float(work)
        #: Remaining work, in abstract units.
        self.work = float(work)
        #: Current progress rate (units/second); set by the pool allocator.
        self.rate = 0.0
        #: Fires (with this task) when the work drains.
        self.done: Event = env.event(name="fluid-done")
        self.meta = meta
        self.tid = next(_task_ids)
        self._pool: Optional["FluidPool"] = None

    @property
    def progress(self) -> float:
        """Fraction of work completed, in [0, 1]."""
        if self.total_work == 0:
            return 1.0
        return 1.0 - self.work / self.total_work

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FluidTask #{self.tid} work={self.work:.4g}/{self.total_work:.4g}"
            f" rate={self.rate:.4g}>"
        )


class FluidPool:
    """A pool of fluid tasks sharing a resource via an allocator callback.

    Parameters
    ----------
    env:
        Simulation environment.
    allocator:
        Called with the list of resident tasks (sorted by admission order)
        whenever membership changes; must set ``task.rate`` on each.  Rates
        must be non-negative and may be zero (a starved task simply does
        not progress).
    """

    def __init__(self, env: Environment,
                 allocator: Callable[[list[FluidTask]], None],
                 name: str = "fluid-pool"):
        self.env = env
        self.allocator = allocator
        self.name = name
        self._tasks: list[FluidTask] = []
        self._last_update = env.now
        # Generation counter: each reallocation invalidates the wakeups
        # scheduled by earlier generations (cheaper than heap removal).
        self._gen = 0
        #: Total work drained through this pool (conservation checks).
        self.work_drained = 0.0

    # -- public API ---------------------------------------------------------
    @property
    def tasks(self) -> tuple[FluidTask, ...]:
        return tuple(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def add(self, task: FluidTask) -> FluidTask:
        """Admit a task; returns it (its ``done`` event fires on drain)."""
        if task._pool is not None:
            raise SimulationError("task already resident in a pool")
        self._advance()
        task._pool = self
        self._tasks.append(task)
        if task.work <= _EPS * max(task.total_work, 1.0):
            self._finish(task)
        self._reallocate()
        return task

    def cancel(self, task: FluidTask) -> float:
        """Evict a task before completion; returns remaining work."""
        if task._pool is not self:
            raise SimulationError("task not resident in this pool")
        self._advance()
        self._tasks.remove(task)
        task._pool = None
        task.rate = 0.0
        self._reallocate()
        return task.work

    def poke(self) -> None:
        """Force a reallocation (e.g. after an external capacity change)."""
        self._advance()
        self._reallocate()

    def utilization_snapshot(self) -> float:
        """Sum of current rates — callers normalise by device capacity."""
        return sum(t.rate for t in self._tasks)

    # -- internals ------------------------------------------------------------
    def _advance(self) -> None:
        """Apply progress at current rates from the last update until now."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        finished: list[FluidTask] = []
        for task in self._tasks:
            if task.rate <= 0:
                continue
            drained = min(task.work, task.rate * dt)
            task.work -= drained
            self.work_drained += drained
            if task.work <= _EPS * max(task.total_work, 1.0):
                task.work = 0.0
                finished.append(task)
        for task in finished:
            self._tasks.remove(task)
            self._finish(task)

    def _finish(self, task: FluidTask) -> None:
        task._pool = None
        task.rate = 0.0
        task.done.succeed(task)

    def _reallocate(self) -> None:
        self._gen += 1
        if not self._tasks:
            return
        self.allocator(self._tasks)
        horizon = math.inf
        for task in self._tasks:
            if task.rate < 0:
                raise SimulationError(
                    f"allocator produced negative rate for {task!r}"
                )
            if task.rate > 0:
                horizon = min(horizon, task.work / task.rate)
        if horizon is math.inf:
            return  # every task starved; an external poke must revive them
        gen = self._gen
        wakeup = self.env.timeout(max(horizon, 0.0))

        def _on_wakeup(_ev: Event) -> None:
            if gen != self._gen:
                return  # superseded by a later reallocation
            self._advance()
            self._reallocate()

        wakeup.callbacks.append(_on_wakeup)
