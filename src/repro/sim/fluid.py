"""Rate-based ("fluid") task pool.

Models a set of concurrently-resident tasks whose progress rates depend on
how a shared resource is divided among them *right now*.  Whenever the set
of resident tasks changes, an allocator callback recomputes every task's
rate and the pool reschedules the next completion.

This is the standard fluid-flow approximation used in network and GPU
sharing simulators: between membership changes, rates are constant, so the
next completion time is exact and the event count stays proportional to
the number of tasks, not to the simulated duration.

The GPU device model layers a roofline allocator on top: a kernel's rate
is ``min(compute_rate(SMs), memory_rate(bandwidth share))``, and the
bandwidth share is recomputed by water-filling on every membership change
(see :mod:`repro.gpu.device`).
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Callable, Optional

from repro.sim.core import Environment, Event, SimulationError
from repro.sim.numerics import KahanSum

__all__ = ["FluidTask", "FluidPool"]

#: Relative tolerance for treating remaining work as drained.
_EPS = 1e-9

_task_ids = itertools.count()


class FluidTask:
    """A unit of divisible work progressing at a pool-assigned rate."""

    __slots__ = ("work", "total_work", "rate", "done", "meta", "tid", "_pool",
                 "_thresh")

    def __init__(self, env: Environment, work: float, meta: Any = None):
        if work < 0:
            raise ValueError(f"negative work {work!r}")
        self.total_work = float(work)
        # Drain threshold, hoisted out of the advance loop (total_work
        # is fixed at construction, so this is the same float the loop
        # used to recompute per task per event).
        self._thresh = _EPS * max(self.total_work, 1.0)
        #: Remaining work, in abstract units.
        self.work = float(work)
        #: Current progress rate (units/second); set by the pool allocator.
        self.rate = 0.0
        #: Fires (with this task) when the work drains.
        self.done: Event = env.event(name="fluid-done")
        self.meta = meta
        self.tid = next(_task_ids)
        self._pool: Optional["FluidPool"] = None

    @property
    def progress(self) -> float:
        """Fraction of work completed, in [0, 1]."""
        if self.total_work == 0:
            return 1.0
        return 1.0 - self.work / self.total_work

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FluidTask #{self.tid} work={self.work:.4g}/{self.total_work:.4g}"
            f" rate={self.rate:.4g}>"
        )


class FluidPool:
    """A pool of fluid tasks sharing a resource via an allocator callback.

    Parameters
    ----------
    env:
        Simulation environment.
    allocator:
        Called with the list of resident tasks (sorted by admission order)
        whenever membership changes; must set ``task.rate`` on each.  Rates
        must be non-negative and may be zero (a starved task simply does
        not progress).
    on_change:
        Optional ``fn(task, added)`` invoked synchronously at every
        membership mutation (admission: ``added=True``; completion or
        cancellation: ``added=False``), always *before* the allocator
        runs for that change.  Incremental allocators use it to maintain
        residency indexes without re-deriving them from the task list on
        every call.
    """

    def __init__(self, env: Environment,
                 allocator: Callable[[list[FluidTask]], None],
                 name: str = "fluid-pool",
                 on_change: Optional[Callable[[FluidTask, bool], None]] = None):
        self.env = env
        self.allocator = allocator
        self.name = name
        self.on_change = on_change
        # Resident tasks keyed by tid.  Python dicts preserve insertion
        # order, so iteration is admission order (the allocator contract)
        # while removal is O(1) — the old list-based pool paid an O(n)
        # ``list.remove`` per completion/cancellation.
        self._tasks: dict[int, FluidTask] = {}
        self._last_update = env.now
        # Generation counter: each reallocation invalidates the wakeups
        # scheduled by earlier generations (cheaper than heap removal).
        self._gen = 0
        # External capacity changes (poke) bump the epoch; together with
        # the membership revision it decides whether cached rates are
        # still valid, letting _reallocate skip the allocator entirely.
        # The revision counter replaces a per-call tuple of resident
        # tids: tids are unique and admission-monotonic, so "no
        # mutation since the last allocation" is exactly "same resident
        # sequence" — at O(1) instead of O(#tasks) per event.
        self._epoch = 0
        self._members_rev = 0
        self._alloc_rev = -1
        self._alloc_epoch = 0
        self._wakeup_pending = False
        # Compensated: at 1M+ tasks the naive running sum drifts enough
        # to fail the conservation checks (see repro.sim.numerics).
        self._work_drained = KahanSum()

    @property
    def work_drained(self) -> float:
        """Total work drained through this pool (conservation checks)."""
        return self._work_drained.value

    # -- public API ---------------------------------------------------------
    @property
    def tasks(self) -> tuple[FluidTask, ...]:
        return tuple(self._tasks.values())

    def __len__(self) -> int:
        return len(self._tasks)

    def add(self, task: FluidTask) -> FluidTask:
        """Admit a task; returns it (its ``done`` event fires on drain)."""
        if task._pool is not None:
            raise SimulationError("task already resident in a pool")
        self._advance()
        if task.work <= task._thresh:
            # Drains instantly: complete without ever becoming resident
            # (residency would double-fire ``done`` on the next advance).
            task.work = 0.0
            self._finish(task)
            return task
        task._pool = self
        self._tasks[task.tid] = task
        self._members_rev += 1
        if self.on_change is not None:
            self.on_change(task, True)
        self._reallocate()
        return task

    def cancel(self, task: FluidTask) -> float:
        """Evict a task before completion; returns remaining work."""
        if task._pool is not self:
            raise SimulationError("task not resident in this pool")
        self._advance()
        del self._tasks[task.tid]
        self._members_rev += 1
        if self.on_change is not None:
            self.on_change(task, False)
        task._pool = None
        task.rate = 0.0
        self._reallocate()
        return task.work

    def poke(self) -> None:
        """Force a reallocation (e.g. after an external capacity change)."""
        if not self._tasks:
            # Empty-to-empty: capacity changes cannot affect anyone, and
            # _advance has nothing to drain.  Skip the allocator round
            # trip entirely (a previously hot path for group churn).
            self._last_update = self.env.now
            return
        self._epoch += 1
        self._advance()
        self._reallocate()

    def utilization_snapshot(self) -> float:
        """Sum of current rates — callers normalise by device capacity."""
        return sum(t.rate for t in self._tasks.values())

    # -- internals ------------------------------------------------------------
    def _advance(self) -> None:
        """Apply progress at current rates from the last update until now."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._tasks:
            return
        finished: Optional[list[FluidTask]] = None
        drained_total = 0.0
        for task in self._tasks.values():
            rate = task.rate
            if rate <= 0:
                continue
            work = task.work
            drained = rate * dt
            if drained > work:
                drained = work
            task.work = work - drained
            drained_total += drained
            if task.work <= task._thresh:
                task.work = 0.0
                if finished is None:
                    finished = []
                finished.append(task)
        self._work_drained.add(drained_total)
        if finished is not None:
            on_change = self.on_change
            for task in finished:
                del self._tasks[task.tid]
                self._members_rev += 1
                if on_change is not None:
                    on_change(task, False)
                self._finish(task)

    def _finish(self, task: FluidTask) -> None:
        task._pool = None
        task.rate = 0.0
        task.done.succeed(task)

    def _reallocate(self) -> None:
        if not self._tasks:
            self._gen += 1  # invalidate any stale wakeup
            self._alloc_rev = -1
            self._wakeup_pending = False
            return
        if (self._members_rev == self._alloc_rev
                and self._epoch == self._alloc_epoch):
            # Same resident set under the same external capacity: the
            # allocator would reproduce the rates every task already
            # carries, so skip it (and the water-filling behind it).
            if self._wakeup_pending:
                return  # the scheduled completion wakeup is still exact
            self._schedule_wakeup()
            return
        self.allocator(list(self._tasks.values()))
        self._alloc_rev = self._members_rev
        self._alloc_epoch = self._epoch
        self._schedule_wakeup()

    def _schedule_wakeup(self) -> None:
        """Arm the wakeup for the earliest completion at current rates."""
        self._gen += 1
        self._wakeup_pending = False
        # The scan doubles as rate validation (the former separate
        # O(#tasks) pass over the allocator's output).
        horizon = math.inf
        for task in self._tasks.values():
            rate = task.rate
            if rate > 0:
                h = task.work / rate
                if h < horizon:
                    horizon = h
            elif rate < 0:
                raise SimulationError(
                    f"allocator produced negative rate for {task!r}"
                )
        if horizon is math.inf:
            return  # every task starved; an external poke must revive them
        gen = self._gen
        # Pooled: nothing retains the wakeup once it fires (the closure
        # below captures only the generation counter).
        wakeup = self.env.timeout_pooled(max(horizon, 0.0))
        self._wakeup_pending = True

        def _on_wakeup(_ev: Event) -> None:
            if gen != self._gen:
                return  # superseded by a later reallocation
            self._wakeup_pending = False
            self._advance()
            self._reallocate()

        wakeup.callbacks.append(_on_wakeup)
