"""Heterogeneous MIG layout planning.

The paper's evaluation uses *uniform* MIG ladders (k equal instances);
real multi-tenant nodes host functions with different knees and memory
footprints.  Given per-function requirements (from the right-sizer),
this planner searches the profile grid for a feasible layout — each
function gets the cheapest profile covering its SM knee and memory need,
subject to the device's 7 compute / 8 memory slice budgets — and reports
what is left for future tenants.

The search is exact (DFS with pruning): at most 7 instances fit a GPU
and the profile grid is tiny, so enumeration is trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.gpu.specs import GPUSpec, MIGProfile

__all__ = ["WorkloadRequirement", "MigLayoutPlan", "plan_mig_layout"]


@dataclass(frozen=True)
class WorkloadRequirement:
    """What one function needs from its MIG instance."""

    name: str
    min_sms: int
    min_memory_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.min_sms <= 0:
            raise ValueError("min_sms must be positive")
        if self.min_memory_bytes < 0:
            raise ValueError("min_memory_bytes must be non-negative")

    def satisfied_by(self, profile: MIGProfile, spec: GPUSpec) -> bool:
        return (profile.sm_count(spec) >= self.min_sms
                and profile.memory_bytes >= self.min_memory_bytes)


@dataclass(frozen=True)
class MigLayoutPlan:
    """A feasible assignment of workloads to MIG profiles."""

    spec_name: str
    assignments: tuple[tuple[str, str], ...]  # (workload, profile)
    used_compute_slices: int
    used_memory_slices: int
    #: Largest additional profile that still fits (None if the GPU is full).
    leftover_profile: Optional[str]

    @property
    def profile_names(self) -> list[str]:
        return [profile for _, profile in self.assignments]

    def profile_for(self, workload: str) -> str:
        for name, profile in self.assignments:
            if name == workload:
                return profile
        raise KeyError(f"no assignment for workload {workload!r}")


def plan_mig_layout(spec: GPUSpec,
                    requirements: Sequence[WorkloadRequirement]
                    ) -> MigLayoutPlan:
    """Find a minimum-footprint feasible MIG layout.

    Minimises total compute slices first, memory slices second (leaving
    the most room for co-tenants).  Raises ``ValueError`` when no layout
    exists — including per-workload diagnostics.
    """
    if not spec.mig_capable:
        raise ValueError(f"{spec.name} does not support MIG")
    if not requirements:
        raise ValueError("no workload requirements given")
    names = [r.name for r in requirements]
    if len(set(names)) != len(names):
        raise ValueError("workload names must be unique")

    candidates: list[list[MIGProfile]] = []
    for req in requirements:
        fitting = sorted(
            (p for p in spec.mig_profiles if req.satisfied_by(p, spec)),
            key=lambda p: (p.compute_slices, p.memory_slices),
        )
        if not fitting:
            raise ValueError(
                f"workload {req.name!r} needs {req.min_sms} SMs and "
                f"{req.min_memory_bytes / 1e9:.1f} GB; no {spec.name} MIG "
                "profile provides that"
            )
        candidates.append(fitting)

    # Search hardest-to-place workloads first for early pruning.
    order = sorted(range(len(requirements)),
                   key=lambda i: candidates[i][0].compute_slices,
                   reverse=True)
    best: Optional[list[MIGProfile]] = None
    best_cost = (spec.mig_compute_slices + 1, spec.mig_memory_slices + 1)
    chosen: list[Optional[MIGProfile]] = [None] * len(requirements)

    def dfs(position: int, compute_used: int, memory_used: int) -> None:
        nonlocal best, best_cost
        if (compute_used, memory_used) >= best_cost:
            return
        if position == len(order):
            best = list(chosen)  # type: ignore[arg-type]
            best_cost = (compute_used, memory_used)
            return
        index = order[position]
        for profile in candidates[index]:
            c = compute_used + profile.compute_slices
            m = memory_used + profile.memory_slices
            if c > spec.mig_compute_slices or m > spec.mig_memory_slices:
                continue
            chosen[index] = profile
            dfs(position + 1, c, m)
            chosen[index] = None

    dfs(0, 0, 0)
    if best is None:
        raise ValueError(
            f"no feasible MIG layout on {spec.name} for "
            f"{[(r.name, r.min_sms) for r in requirements]}: the slice "
            "budgets (7 compute / 8 memory) are exceeded"
        )
    compute_used = sum(p.compute_slices for p in best)
    memory_used = sum(p.memory_slices for p in best)
    leftover = None
    for profile in sorted(spec.mig_profiles,
                          key=lambda p: p.compute_slices, reverse=True):
        if (compute_used + profile.compute_slices <= spec.mig_compute_slices
                and memory_used + profile.memory_slices
                <= spec.mig_memory_slices):
            leftover = profile.name
            break
    return MigLayoutPlan(
        spec_name=spec.name,
        assignments=tuple(
            (req.name, profile.name)
            for req, profile in zip(requirements, best)
        ),
        used_compute_slices=compute_used,
        used_memory_slices=memory_used,
        leftover_profile=leftover,
    )
