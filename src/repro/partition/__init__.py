"""GPU partitioning toolkit.

The operational half of the paper's contribution plus its §7 future-work
directions:

- :mod:`repro.partition.policy` — how to split a GPU among k functions
  (equal MPS percentages; the paper's MIG ladder 2→3g, 3→2g, 4→1g).
- :mod:`repro.partition.manager` — applies a policy to a compute node and
  emits the matching ``HighThroughputExecutor`` configuration (the
  Listing 2/3 glue).
- :mod:`repro.partition.reconfig` — what repartitioning costs: MPS needs
  a client process restart (reload the model, 10-20 s for LLMs); MIG
  needs a GPU reset and disturbs every co-tenant (§6).
- :mod:`repro.partition.weightcache` — GPU-resident weight sharing so a
  restarted function skips the model reload (§7 "Re-configuring GPU
  resources Faster").
- :mod:`repro.partition.rightsizing` — find the smallest partition whose
  latency is within tolerance of the full GPU (§7 "Understanding GPU
  resource requirement").
- :mod:`repro.partition.predictor` — approximate runtime from GPU
  resources via static kernel analysis or profile fitting (§7).
"""

from repro.partition.policy import (
    DemandBasedPolicy,
    EqualSharePolicy,
    StaticPolicy,
    mig_profiles_for,
)
from repro.partition.manager import GpuPartitionManager
from repro.partition.autoscaler import (
    ManagedFunction,
    PartitionAutoscaler,
    ScalingDecision,
    SizingResult,
    cooldown_elapsed,
    required_sms_for,
    scaled_percentages,
)
from repro.partition.reconfig import ReconfigCost, ReconfigurationPlanner
from repro.partition.weightcache import WeightCache
from repro.partition.rightsizing import (
    PartitionRecommendation,
    PlacementNeed,
    RightSizer,
)
from repro.partition.predictor import RuntimePredictor, StaticAnalyzer
from repro.partition.profiler import PartitionProfiler, ProfileReport
from repro.partition.layout import (
    MigLayoutPlan,
    WorkloadRequirement,
    plan_mig_layout,
)

__all__ = [
    "DemandBasedPolicy",
    "EqualSharePolicy",
    "GpuPartitionManager",
    "ManagedFunction",
    "MigLayoutPlan",
    "PartitionAutoscaler",
    "PartitionProfiler",
    "PartitionRecommendation",
    "PlacementNeed",
    "ProfileReport",
    "ScalingDecision",
    "SizingResult",
    "ReconfigCost",
    "ReconfigurationPlanner",
    "RightSizer",
    "RuntimePredictor",
    "StaticAnalyzer",
    "StaticPolicy",
    "WeightCache",
    "WorkloadRequirement",
    "cooldown_elapsed",
    "mig_profiles_for",
    "plan_mig_layout",
    "required_sms_for",
    "scaled_percentages",
]
