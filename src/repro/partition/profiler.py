"""Online partition profiling: measure, fit, recommend.

The right-sizer (:mod:`repro.partition.rightsizing`) needs a
latency-vs-SMs curve.  For analytic workloads the closed form suffices;
for arbitrary ``@gpu_app`` functions this profiler obtains the curve the
way an operator would — by *running the function* on a sweep of MPS
partitions of a scratch device — then fits the
:class:`~repro.partition.predictor.RuntimePredictor` scaling law and
emits a :class:`~repro.partition.rightsizing.PartitionRecommendation`.

This is the concrete realisation of §7's proposed tool pipeline:
profile → approximate runtime from GPU resources → right-size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.sim.core import Environment
from repro.faas.providers import ComputeNode
from repro.faas.workers import TaskContext, Worker
from repro.faas.coldstart import ColdStartModel
from repro.faas.environment import FunctionEnvironment
from repro.gpu.specs import GPUSpec
from repro.partition.predictor import RuntimePredictor
from repro.partition.rightsizing import PartitionRecommendation, RightSizer

__all__ = ["PartitionProfiler", "ProfileReport"]

#: Default MPS percentage sweep (kept short: each point is a full run).
DEFAULT_SWEEP = (10, 20, 35, 50, 75, 100)


@dataclass(frozen=True)
class ProfileReport:
    """Everything the profiling pipeline produced."""

    samples: tuple[tuple[int, float], ...]  # (sms, measured seconds)
    predictor: RuntimePredictor
    fit_rmse: float
    recommendation: PartitionRecommendation


class PartitionProfiler:
    """Profiles a GPU app generator across MPS partition sizes."""

    def __init__(self, spec: GPUSpec, tolerance: float = 0.05,
                 percentages: Sequence[int] = DEFAULT_SWEEP):
        if len(percentages) < 3:
            raise ValueError("need at least 3 sweep points to fit")
        for pct in percentages:
            if not 0 < pct <= 100:
                raise ValueError(f"percentage {pct} outside (0, 100]")
        self.spec = spec
        self.tolerance = tolerance
        self.percentages = tuple(sorted(set(percentages)))

    def measure(self, app_fn: Callable, percentage: int,
                *args, **kwargs) -> tuple[int, float]:
        """Run ``app_fn(ctx, ...)`` once at ``percentage``; returns
        ``(sms, seconds)``.  Each measurement uses a fresh scratch
        environment so runs are independent and reproducible."""
        env = Environment()
        node = ComputeNode(env, cores=8, gpu_specs=[self.spec])
        node.start_mps()
        client = node.mps_daemons[0].client("probe",
                                            active_thread_percentage=percentage)
        worker = _ProbeWorker(env, node, client)
        ctx = TaskContext(env, worker, client, node)
        t0 = env.now
        proc = env.process(app_fn(ctx, *args, **kwargs))
        env.run(until=proc)
        return client.sm_cap, env.now - t0

    def profile(self, app_fn: Callable, *args, **kwargs) -> ProfileReport:
        """Sweep, fit the scaling law, and right-size."""
        samples = tuple(
            self.measure(app_fn, pct, *args, **kwargs)
            for pct in self.percentages
        )
        predictor = RuntimePredictor()
        rmse = predictor.fit(list(samples))
        sizer = RightSizer(self.spec, tolerance=self.tolerance)
        recommendation = sizer.recommend(
            lambda sms: predictor.predict(sms))
        return ProfileReport(samples=samples, predictor=predictor,
                             fit_rmse=rmse, recommendation=recommendation)


class _ProbeWorker:
    """A minimal stand-in worker so TaskContext works outside executors."""

    def __init__(self, env: Environment, node: ComputeNode, client):
        self.env = env
        self.node = node
        self.name = "profiler-probe"
        self.gpu = client
        self.loaded_models: set[str] = set()
        self.alive = True
