"""Repartitioning cost semantics (§6's discussion, §7's motivation).

The paper measures two awkward facts about changing a running partition:

- **MPS**: the SM percentage is fixed at process start, so resizing means
  killing and restarting the client — and "for LLMs like LLaMa, it
  results in 10-20 seconds of setup time" (mostly the model reload).
- **MIG**: repartitioning requires *shutting down every application on
  the GPU* and a reset, adding 1-2 s on top and disturbing co-tenants.

:class:`ReconfigurationPlanner` computes those costs analytically and can
execute the corresponding sequence against a live simulated node, with or
without the :mod:`~repro.partition.weightcache` that removes the reload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.faas.coldstart import ColdStartModel
from repro.faas.providers import ComputeNode
from repro.gpu.specs import GPUSpec

__all__ = ["ReconfigCost", "ReconfigurationPlanner"]


@dataclass(frozen=True)
class ReconfigCost:
    """Breakdown of one repartitioning operation."""

    technique: str
    #: Stopping affected clients / instances.
    teardown_seconds: float
    #: GPU reset (MIG only).
    reset_seconds: float
    #: Process restart: function init + GPU context.
    restart_seconds: float
    #: Re-loading application state (model weights) into the partition.
    model_reload_seconds: float
    #: Whether applications *not* being resized are interrupted too.
    disturbs_cotenants: bool

    @property
    def total_seconds(self) -> float:
        return (self.teardown_seconds + self.reset_seconds
                + self.restart_seconds + self.model_reload_seconds)


class ReconfigurationPlanner:
    """Analytic costs plus executable reconfiguration sequences."""

    #: Time to terminate one client process cleanly.
    TEARDOWN_SECONDS = 0.25

    def __init__(self, spec: GPUSpec,
                 cold_start: ColdStartModel | None = None):
        self.spec = spec
        self.cold_start = cold_start if cold_start is not None else ColdStartModel()

    # -- analytic costs -----------------------------------------------------
    def mps_repartition_cost(self, model_load_seconds: float,
                             weight_cache_hit: bool = False) -> ReconfigCost:
        """Cost of changing one MPS client's GPU percentage.

        Only the resized client restarts; co-tenants keep running.  With a
        GPU-resident weight cache the reload drops out — the §7 payoff.
        """
        if model_load_seconds < 0:
            raise ValueError("model_load_seconds must be non-negative")
        return ReconfigCost(
            technique="mps",
            teardown_seconds=self.TEARDOWN_SECONDS,
            reset_seconds=0.0,
            restart_seconds=self.cold_start.worker_start_seconds(True),
            model_reload_seconds=0.0 if weight_cache_hit else model_load_seconds,
            disturbs_cotenants=False,
        )

    def mig_repartition_cost(self, model_load_seconds: float,
                             n_cotenants: int,
                             weight_cache_hit: bool = False) -> ReconfigCost:
        """Cost of changing the MIG partition layout.

        Every application on the GPU must stop (``n_cotenants`` of them
        plus the resized one), the GPU resets, and every one restarts.

        Note: a MIG repartition destroys the instances' memory pools, so
        weights cached inside them are lost — ``weight_cache_hit`` only
        applies if the cache lives outside the repartitioned instances.
        """
        if model_load_seconds < 0:
            raise ValueError("model_load_seconds must be non-negative")
        if n_cotenants < 0:
            raise ValueError("n_cotenants must be non-negative")
        n_restarts = n_cotenants + 1
        return ReconfigCost(
            technique="mig",
            teardown_seconds=self.TEARDOWN_SECONDS * n_restarts,
            reset_seconds=self.spec.reset_seconds,
            restart_seconds=(
                self.cold_start.worker_start_seconds(True) * n_restarts
            ),
            model_reload_seconds=(
                0.0 if weight_cache_hit else model_load_seconds * n_restarts
            ),
            disturbs_cotenants=n_cotenants > 0,
        )

    # -- executable sequences (generators; yield from inside a process) -----
    def execute_mps_repartition(self, node: ComputeNode, gpu_index: int,
                                client, new_percentage: int,
                                model_key: str | None = None,
                                model_bytes: float = 0.0,
                                model_load_seconds: float = 0.0):
        """Restart ``client`` under ``new_percentage``; returns new client.

        Uses the node's weight cache when attached and ``model_key`` is
        given, reproducing the §7 fast path.
        """
        env = node.env
        daemon = node.mps_daemons[gpu_index]
        if not daemon.running:
            raise RuntimeError("MPS daemon is not running on this GPU")
        cache = node.weight_cache
        if cache is not None and model_key is not None:
            # The cache owns the weights; releasing the client's reference
            # keeps them resident across the restart.
            if model_key in cache.resident_keys(client):
                cache.release(client, model_key)
        name = client.name
        client.close()
        yield env.timeout(self.TEARDOWN_SECONDS)
        yield env.timeout(self.cold_start.worker_start_seconds(True))
        new_client = daemon.client(name, active_thread_percentage=new_percentage)
        if model_key is not None:
            if cache is not None:
                hit = cache.acquire(new_client, model_key, model_bytes)
                if not hit:
                    yield env.timeout(model_load_seconds)
            else:
                new_client.alloc(model_bytes)
                yield env.timeout(model_load_seconds)
        return new_client

    def execute_mig_repartition(self, node: ComputeNode, gpu_index: int,
                                profiles: Sequence[str]):
        """Tear down all instances, reset, create ``profiles``.

        All clients on the GPU must already be closed (the MIG manager
        enforces it — the §6 "shut down all the applications" rule).
        Returns the new instances.
        """
        env = node.env
        manager = node.mig_manager(gpu_index)
        n_instances = len(manager.instances)
        yield env.timeout(self.TEARDOWN_SECONDS * max(1, n_instances))
        instances = yield env.process(manager.reconfigure(profiles))
        return instances
