"""Partition policies: how to split a GPU among k concurrent functions.

The evaluation (§5.2) uses two concrete policies we reproduce verbatim:

- **MPS equal split** — "when running 2 LLaMa2 processes we give each of
  them 50% GPU and so on";
- **the MIG ladder** — 2 models → ``3g`` each, 3 → ``2g``, 4 → ``1g``
  (MIG cannot split finer than the profile grid, which is exactly why it
  loses to MPS at 3- and 4-way sharing).

``DemandBasedPolicy`` generalises to heterogeneous functions using their
right-sizing knees as demands.
"""

from __future__ import annotations

from typing import Sequence

from repro.gpu.specs import GPUSpec

__all__ = [
    "EqualSharePolicy",
    "StaticPolicy",
    "DemandBasedPolicy",
    "mig_profiles_for",
]


def mig_profiles_for(spec: GPUSpec, n_partitions: int,
                     min_memory_bytes: float = 0.0) -> list[str]:
    """The paper's MIG ladder: the largest equal profile fitting n times.

    Picks the profile with the most compute slices such that ``n`` copies
    respect both the compute-slice (7) and memory-slice (8) budgets and
    each instance holds at least ``min_memory_bytes`` (e.g. the model's
    working set — a LLaMa-2 7B fp16 instance cannot live in a 1g.10gb
    slice, so four-way sharing must use 1g.20gb).  Ties on compute slices
    are broken toward the *fewest* memory slices that still satisfy the
    requirement, leaving memory for co-tenants.
    """
    if not spec.mig_capable:
        raise ValueError(f"{spec.name} does not support MIG")
    if n_partitions <= 0:
        raise ValueError("n_partitions must be positive")
    if n_partitions > spec.mig_compute_slices:
        raise ValueError(
            f"{spec.name} supports at most {spec.mig_compute_slices} MIG "
            f"instances, asked for {n_partitions}"
        )
    best = None
    for profile in spec.mig_profiles:
        if (n_partitions * profile.compute_slices <= spec.mig_compute_slices
                and n_partitions * profile.memory_slices
                <= spec.mig_memory_slices
                and profile.memory_bytes >= min_memory_bytes):
            if (best is None
                    or profile.compute_slices > best.compute_slices
                    or (profile.compute_slices == best.compute_slices
                        and profile.memory_slices < best.memory_slices)):
                best = profile
    if best is None:
        raise ValueError(
            f"no MIG profile of {spec.name} fits {n_partitions} times with "
            f">= {min_memory_bytes / 1e9:.1f} GB per instance"
        )
    return [best.name] * n_partitions


class EqualSharePolicy:
    """Split one GPU evenly among ``n`` workers (the §5.2 policy).

    ``min_memory_bytes`` optionally declares the per-worker device memory
    requirement so the MIG ladder never selects an instance too small for
    the model (see :func:`mig_profiles_for`).
    """

    def __init__(self, n_partitions: int, min_memory_bytes: float = 0.0):
        if n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        if min_memory_bytes < 0:
            raise ValueError("min_memory_bytes must be non-negative")
        self.n_partitions = n_partitions
        self.min_memory_bytes = min_memory_bytes

    def mps_percentages(self) -> list[int]:
        """Equal ``CUDA_MPS_ACTIVE_THREAD_PERCENTAGE`` values."""
        return [max(1, round(100 / self.n_partitions))] * self.n_partitions

    def mig_profiles(self, spec: GPUSpec) -> list[str]:
        return mig_profiles_for(spec, self.n_partitions,
                                self.min_memory_bytes)


class StaticPolicy:
    """Operator-specified percentages (Listing 2's [50, 25, 30] style)."""

    def __init__(self, percentages: Sequence[int]):
        if not percentages:
            raise ValueError("percentages must be non-empty")
        for pct in percentages:
            if not 0 < pct <= 100:
                raise ValueError(f"percentage {pct} outside (0, 100]")
        self.percentages = list(percentages)

    def mps_percentages(self) -> list[int]:
        return list(self.percentages)

    @property
    def n_partitions(self) -> int:
        return len(self.percentages)


class DemandBasedPolicy:
    """Divide the GPU proportionally to each function's SM demand.

    Demands are SM counts — typically the right-sizing knee of each
    function (:class:`repro.partition.rightsizing.RightSizer`).  When the
    demands fit outright, each function gets exactly its knee; otherwise
    shares shrink proportionally (minimum 1%).
    """

    def __init__(self, demands_sms: Sequence[int], spec: GPUSpec):
        if not demands_sms:
            raise ValueError("demands_sms must be non-empty")
        for d in demands_sms:
            if d <= 0:
                raise ValueError("SM demands must be positive")
        self.demands = list(demands_sms)
        self.spec = spec

    @property
    def n_partitions(self) -> int:
        return len(self.demands)

    def mps_percentages(self) -> list[int]:
        total = sum(self.demands)
        scale = min(1.0, self.spec.sms / total)
        return [
            max(1, min(100, round(100 * d * scale / self.spec.sms)))
            for d in self.demands
        ]
