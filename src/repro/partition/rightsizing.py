"""Right-sizing GPU partitions (§7 "Understanding GPU resource
requirement").

Fig. 2's observation — LLaMa-2 latency stops improving past ~20 SMs — is
operationalised here: profile a workload's latency-vs-SMs curve, find the
*knee* (smallest SM count within a tolerance of the full-GPU latency),
and translate it into the deployable partition artefacts: an MPS GPU
percentage and the smallest adequate MIG profile.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.gpu.specs import GPUSpec

__all__ = ["PartitionRecommendation", "PlacementNeed", "RightSizer"]


class PlacementNeed(enum.Enum):
    """What kind of device slice a right-sized workload actually needs.

    ``_smallest_profile`` returning ``None`` used to conflate two very
    different situations — "this GPU has no MIG at all" and "the knee
    exceeds every MIG profile" — and callers silently printed a dash
    either way.  The cluster packer must tell them apart: the former
    still shares fine under MPS, the latter needs a whole GPU (or more
    than one).
    """

    #: The knee fits inside some MIG profile of this GPU model.
    MIG_SLICE = "mig-slice"
    #: MIG-capable GPU, but the knee exceeds every profile: dedicate
    #: the whole device.
    WHOLE_GPU = "whole-gpu"
    #: The GPU model has no MIG; share via MPS percentages only.
    MPS_ONLY = "mps-only"
    #: The knee exceeds the whole device — one GPU is not enough.
    MULTI_GPU = "multi-gpu"


@dataclass(frozen=True)
class PartitionRecommendation:
    """The output of right-sizing one workload on one GPU model."""

    #: Smallest SM count within tolerance of the full-GPU latency.
    knee_sms: int
    #: ``CUDA_MPS_ACTIVE_THREAD_PERCENTAGE`` realising the knee.
    mps_percentage: int
    #: Smallest MIG profile with at least ``knee_sms`` SMs (None when
    #: ``placement`` says the workload cannot land on a MIG slice).
    mig_profile: Optional[str]
    #: Predicted latency at the knee and on the full GPU, seconds.
    predicted_latency: float
    full_gpu_latency: float
    #: Latency tolerance the knee was computed for.
    tolerance: float
    #: Fraction of the device the workload can release to co-tenants.
    freed_fraction: float
    #: Typed placement verdict (see :class:`PlacementNeed`).
    placement: PlacementNeed = PlacementNeed.MIG_SLICE

    @property
    def needs_whole_gpu(self) -> bool:
        """True when no MIG slice of this model can hold the knee."""
        return self.placement in (PlacementNeed.WHOLE_GPU,
                                  PlacementNeed.MULTI_GPU)


class RightSizer:
    """Finds the knee of a latency-vs-SMs curve for a GPU model."""

    def __init__(self, spec: GPUSpec, tolerance: float = 0.05):
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.spec = spec
        self.tolerance = tolerance

    def profile_curve(self, latency_fn: Callable[[int], float],
                      sms_list: Sequence[int] | None = None
                      ) -> list[tuple[int, float]]:
        """Evaluate ``latency_fn`` over an SM sweep (Fig. 2's x-axis)."""
        if sms_list is None:
            sms_list = list(range(1, self.spec.sms + 1))
        curve = []
        for sms in sms_list:
            if not 1 <= sms <= self.spec.sms:
                raise ValueError(f"sms {sms} outside [1, {self.spec.sms}]")
            latency = latency_fn(sms)
            if latency <= 0 or not math.isfinite(latency):
                raise ValueError(
                    f"latency_fn({sms}) returned invalid value {latency!r}"
                )
            curve.append((sms, latency))
        return curve

    def knee(self, curve: Sequence[tuple[int, float]]) -> int:
        """Smallest SM count within ``(1 + tolerance)`` of the best."""
        if not curve:
            raise ValueError("empty profile curve")
        best = min(latency for _, latency in curve)
        for sms, latency in sorted(curve):
            if latency <= best * (1.0 + self.tolerance):
                return sms
        raise AssertionError("unreachable: the best point satisfies itself")

    def recommend(self, latency_fn: Callable[[int], float],
                  sms_list: Sequence[int] | None = None
                  ) -> PartitionRecommendation:
        """Profile, find the knee, and map it to MPS% / MIG profile."""
        curve = self.profile_curve(latency_fn, sms_list)
        knee_sms = self.knee(curve)
        by_sms = dict(curve)
        full_sms = max(by_sms)
        mps_pct = max(1, min(100, math.ceil(100.0 * knee_sms / self.spec.sms)))
        mig_profile, placement = self._profile_placement(knee_sms)
        return PartitionRecommendation(
            knee_sms=knee_sms,
            mps_percentage=mps_pct,
            mig_profile=mig_profile,
            predicted_latency=by_sms[knee_sms],
            full_gpu_latency=by_sms[full_sms],
            tolerance=self.tolerance,
            freed_fraction=1.0 - knee_sms / self.spec.sms,
            placement=placement,
        )

    def _profile_placement(
            self, knee_sms: int) -> tuple[Optional[str], PlacementNeed]:
        """Map the knee to (MIG profile, typed placement verdict)."""
        if knee_sms > self.spec.sms:
            return None, PlacementNeed.MULTI_GPU
        if not self.spec.mig_capable:
            return None, PlacementNeed.MPS_ONLY
        fitting = [
            p for p in self.spec.mig_profiles
            if p.sm_count(self.spec) >= knee_sms
        ]
        if not fitting:
            # MIG reserves SMs for isolation (mig_usable_sms < sms), so
            # a knee past the largest profile still fits the bare GPU.
            return None, PlacementNeed.WHOLE_GPU
        best = min(fitting, key=lambda p: p.compute_slices)
        return best.name, PlacementNeed.MIG_SLICE

    def _smallest_profile(self, knee_sms: int) -> Optional[str]:
        """Smallest fitting MIG profile name (kept for compatibility)."""
        return self._profile_placement(knee_sms)[0]
