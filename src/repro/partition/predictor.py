"""Runtime approximation from GPU resources (§7's second direction).

Two complementary predictors:

- :class:`StaticAnalyzer` — "static analysis of applications": given the
  kernels a function will launch (a :class:`~repro.gpu.kernel.KernelGroup`),
  predict its runtime at any SM allocation from the roofline, with no
  profiling runs at all.
- :class:`RuntimePredictor` — fit the scaling law
  ``T(s) = a / min(s, c) + b`` to a handful of measured (SMs, latency)
  points, then predict latency at unseen allocations.  ``a`` captures
  parallelisable work, ``b`` the serial floor (memory-bound + host time),
  ``c`` the saturation point — the same knee Fig. 2 exhibits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.gpu.kernel import KernelGroup
from repro.gpu.specs import GPUSpec

__all__ = ["RuntimePredictor", "StaticAnalyzer"]


class StaticAnalyzer:
    """Closed-form runtime hints from a function's kernel inventory."""

    def __init__(self, spec: GPUSpec):
        self.spec = spec

    def predict_seconds(self, kernels: KernelGroup, sms: int,
                        bandwidth: float | None = None,
                        host_seconds: float = 0.0) -> float:
        """Predicted isolated runtime of the kernel sequence on ``sms``."""
        if sms <= 0:
            raise ValueError("sms must be positive")
        bw = self.spec.bandwidth if bandwidth is None else bandwidth
        gpu_time = sum(
            k.duration(sms, self.spec.flops_per_sm, bw) for k in kernels
        )
        return gpu_time + host_seconds

    def sm_requirement(self, kernels: KernelGroup,
                       tolerance: float = 0.05) -> int:
        """Smallest SM count within tolerance of the full-GPU runtime."""
        best = self.predict_seconds(kernels, self.spec.sms)
        for sms in range(1, self.spec.sms + 1):
            if self.predict_seconds(kernels, sms) <= best * (1 + tolerance):
                return sms
        return self.spec.sms


@dataclass(frozen=True)
class _Fit:
    a: float
    b: float
    c: float
    rmse: float


class RuntimePredictor:
    """Fits ``T(s) = a / min(s, c) + b`` to profiled latencies."""

    def __init__(self):
        self._fit: _Fit | None = None

    @property
    def is_fitted(self) -> bool:
        return self._fit is not None

    @property
    def saturation_sms(self) -> float:
        """The fitted saturation point ``c`` (Fig. 2's plateau onset)."""
        self._require_fit()
        return self._fit.c

    @property
    def serial_seconds(self) -> float:
        """The fitted serial floor ``b``."""
        self._require_fit()
        return self._fit.b

    def fit(self, samples: Sequence[tuple[int, float]]) -> float:
        """Fit to ``(sms, latency)`` samples; returns the fit RMSE.

        Grid-searches the saturation point ``c`` over the sampled SM
        range — every integer SM count (saturation happens at a physical
        SM count) plus a linspace for sub-integer optima on noisy data;
        for each candidate, ``a`` and ``b`` come from ordinary least
        squares on the design ``[1/min(s, c), 1]`` with ``a, b`` clipped
        to be non-negative.
        """
        if len(samples) < 3:
            raise ValueError("need at least 3 (sms, latency) samples")
        s = np.asarray([p[0] for p in samples], dtype=float)
        t = np.asarray([p[1] for p in samples], dtype=float)
        if np.any(s <= 0) or np.any(t <= 0):
            raise ValueError("samples must be positive")
        best: _Fit | None = None
        candidates = np.unique(np.concatenate([
            s,
            np.linspace(s.min(), s.max(), 64),
            np.arange(np.ceil(s.min()), np.floor(s.max()) + 1.0),
        ]))
        for c in candidates:
            x = 1.0 / np.minimum(s, c)
            design = np.stack([x, np.ones_like(x)], axis=1)
            coef, *_ = np.linalg.lstsq(design, t, rcond=None)
            a, b = max(coef[0], 0.0), max(coef[1], 0.0)
            pred = a * x + b
            rmse = float(np.sqrt(np.mean((pred - t) ** 2)))
            if best is None or rmse < best.rmse:
                best = _Fit(a=float(a), b=float(b), c=float(c), rmse=rmse)
        self._fit = best
        return best.rmse

    def predict(self, sms: int | float) -> float:
        """Predicted latency at ``sms`` SMs."""
        self._require_fit()
        if sms <= 0:
            raise ValueError("sms must be positive")
        f = self._fit
        return f.a / min(float(sms), f.c) + f.b

    def sm_requirement(self, tolerance: float = 0.05) -> int:
        """Smallest integer SM count within tolerance of the asymptote."""
        self._require_fit()
        f = self._fit
        floor = f.a / f.c + f.b
        for sms in range(1, int(math.ceil(f.c)) + 1):
            if self.predict(sms) <= floor * (1 + tolerance):
                return sms
        return int(math.ceil(f.c))

    def _require_fit(self) -> None:
        if self._fit is None:
            raise RuntimeError("call fit() before predicting")
