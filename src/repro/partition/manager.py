"""Partition manager: from policy to executor configuration.

Glues a :mod:`~repro.partition.policy` onto a compute node and emits the
``(available_accelerators, gpu_percentage)`` pair that configures the
paper's enhanced ``HighThroughputExecutor`` (Listings 2 and 3) — so the
whole pipeline *policy → env vars → workers → GPU clients* is one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.faas.providers import ComputeNode
from repro.gpu.mig import MigInstance

__all__ = ["GpuPartitionManager", "HtexGpuConfig"]


@dataclass(frozen=True)
class HtexGpuConfig:
    """The executor-facing artefact of a partitioning decision."""

    available_accelerators: tuple[str, ...]
    gpu_percentage: Optional[tuple[int, ...]]

    @property
    def n_workers(self) -> int:
        return len(self.available_accelerators)


class GpuPartitionManager:
    """Manages the partitions of one GPU on one node."""

    def __init__(self, node: ComputeNode, gpu_index: int = 0):
        if not 0 <= gpu_index < len(node.gpus):
            raise ValueError(
                f"node {node.name} has {len(node.gpus)} GPUs, "
                f"index {gpu_index} invalid"
            )
        self.node = node
        self.gpu_index = gpu_index

    @property
    def device(self):
        return self.node.gpus[self.gpu_index]

    # -- MPS ---------------------------------------------------------------
    def apply_mps_policy(self, policy) -> HtexGpuConfig:
        """Start MPS and emit a Listing-2 style config from the policy."""
        percentages = policy.mps_percentages()
        self.node.start_mps(self.gpu_index)
        return HtexGpuConfig(
            available_accelerators=tuple(
                str(self.gpu_index) for _ in percentages
            ),
            gpu_percentage=tuple(percentages),
        )

    # -- MIG ------------------------------------------------------------------
    def apply_mig_policy(self, policy):
        """Enable MIG if needed and create the policy's instances.

        Generator (MIG changes cost a GPU reset); returns the Listing-3
        style config with one worker per instance UUID.
        """
        profiles = policy.mig_profiles(self.device.spec)
        manager = self.node.mig_manager(self.gpu_index)
        if not manager.enabled:
            yield from manager.enable()
        instances: list[MigInstance] = yield self.node.env.process(
            manager.reconfigure(profiles)
        )
        return HtexGpuConfig(
            available_accelerators=tuple(i.uuid for i in instances),
            gpu_percentage=None,
        )

    # -- time-sharing baseline ------------------------------------------------
    def timeshare_config(self, n_workers: int) -> HtexGpuConfig:
        """The unpartitioned baseline: n workers share the GPU temporally."""
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        return HtexGpuConfig(
            available_accelerators=tuple(
                str(self.gpu_index) for _ in range(n_workers)
            ),
            gpu_percentage=None,
        )

    # -- introspection -----------------------------------------------------------
    def describe(self) -> str:
        device = self.device
        manager = self.node._mig_managers.get(self.gpu_index)
        if manager is not None and manager.enabled:
            profiles = ", ".join(i.profile.name for i in manager.instances)
            return f"{device.name}: MIG [{profiles or 'no instances'}]"
        if self.node.mps_daemons[self.gpu_index].running:
            clients = device.default_group.clients
            pcts = ", ".join(
                f"{round(100 * c.sm_cap / device.spec.sms)}%" for c in clients
            )
            return f"{device.name}: MPS [{pcts or 'no clients'}]"
        return f"{device.name}: time-sharing"
