"""Demand-driven partition autoscaling (§7's end goal).

The paper's future-work motivation: "This challenge becomes crucial as we
multiplex the applications and aim to change GPU resources depending on
demand."  This controller closes that loop on the simulator:

1. each managed function declares a latency SLO and a latency-vs-SMs
   model (a profiled :class:`~repro.partition.predictor.RuntimePredictor`
   or any callable);
2. a periodic control loop converts each function's current request rate
   into an SM requirement — enough SMs that the SLO holds *and* the
   function is stable (utilisation below a safety ceiling);
3. when requirements drift beyond a threshold and the cooldown has
   passed, the loop repartitions via the
   :class:`~repro.partition.reconfig.ReconfigurationPlanner`, paying the
   real MPS restart cost (which the §7 weight cache shrinks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.faas.providers import ComputeNode
from repro.gpu.device import GpuClient
from repro.gpu.specs import GPUSpec
from repro.partition.reconfig import ReconfigurationPlanner

__all__ = ["ManagedFunction", "PartitionAutoscaler", "ScalingDecision",
           "SizingResult", "cooldown_elapsed", "required_sms_for",
           "scaled_percentages"]


# -- shared sizing and gating helpers ---------------------------------------
#
# Standalone so both controllers — :class:`PartitionAutoscaler` (node-level,
# one client per function) and the fleet-level
# :class:`~repro.workloads.autoscale.FleetAutoscaler` (replicated serving)
# — size partitions and gate reconfigurations with identical arithmetic.

class SizingResult(int):
    """An SM count that also carries an explicit feasibility verdict.

    Subclasses :class:`int` so every existing arithmetic consumer of
    :func:`required_sms_for` keeps working unchanged, while callers that
    must not over-provision infeasible functions (the cluster packer)
    can reject on ``.feasible`` instead of silently receiving the
    whole-GPU best effort.
    """

    feasible: bool

    def __new__(cls, sms: int, feasible: bool = True) -> "SizingResult":
        self = super().__new__(cls, sms)
        self.feasible = bool(feasible)
        return self

    def __repr__(self) -> str:
        return f"SizingResult({int(self)}, feasible={self.feasible})"


def required_sms_for(spec: GPUSpec, latency_fn: Callable[[int], float],
                     slo_seconds: float, demand_rps: float,
                     utilization_ceiling: float = 0.8) -> SizingResult:
    """Smallest SM count meeting the SLO and the stability ceiling.

    Stability: at ``demand_rps`` each server must spend less than
    ``utilization_ceiling`` of its time serving, i.e.
    ``demand_rps * latency(sms) <= utilization_ceiling``.

    Latency curves here are non-increasing in SMs (more compute never
    slows a request down — the same law :class:`RuntimePredictor` fits),
    which makes the acceptance predicate monotone, so the smallest
    feasible size is found by bisection in O(log sms) evaluations
    instead of the previous full linear scan.  Monotonicity is verified
    on the points actually evaluated; if the curve wobbles, the exact
    linear scan runs as a fallback.  When even the whole GPU cannot
    meet the SLO the result is ``spec.sms`` with ``feasible=False`` —
    best effort for the reactive controllers, an explicit rejection
    signal for the cluster packer.
    """
    if demand_rps == 0:
        return SizingResult(1)  # keep the model warm on a sliver

    def acceptable(latency: float) -> bool:
        return latency <= slo_seconds and \
            demand_rps * latency <= utilization_ceiling

    evaluated: dict[int, float] = {}

    def latency_at(sms: int) -> float:
        if sms not in evaluated:
            evaluated[sms] = latency_fn(sms)
        return evaluated[sms]

    def linear_scan() -> SizingResult:
        for sms in range(1, spec.sms + 1):
            if acceptable(latency_at(sms)):
                return SizingResult(sms)
        return SizingResult(spec.sms, feasible=False)

    if not acceptable(latency_at(spec.sms)):
        # Even the whole GPU misses.  A monotone curve makes that a
        # proof of infeasibility, but the scan settles it exactly even
        # if the curve dips somewhere in the middle.
        return linear_scan()
    if acceptable(latency_at(1)):
        result = 1
    else:
        lo, hi = 1, spec.sms  # invariant: lo unacceptable, hi acceptable
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if acceptable(latency_at(mid)):
                hi = mid
            else:
                lo = mid
        result = hi
    points = sorted(evaluated.items())
    monotone = all(later <= earlier + 1e-12
                   for (_, earlier), (_, later) in zip(points, points[1:]))
    if not monotone:
        return linear_scan()
    return SizingResult(result)


def scaled_percentages(spec: GPUSpec, needed: dict[str, int],
                       counts: Optional[dict[str, int]] = None,
                       min_percentage: int = 5,
                       expand: bool = False) -> dict[str, int]:
    """Per-function MPS percentages fitting ``needed`` SMs on ``spec``.

    ``counts`` replicates a function's requirement (``needed[f]`` SMs
    per replica, ``counts[f]`` replicas); the returned percentage is
    *per replica*.  When the total requirement exceeds the GPU, shares
    shrink proportionally.  With ``expand=True`` surplus SMs are also
    handed out proportionally (work-conserving: a provisioned GPU
    should not idle).

    The replica-weighted sum ``sum(pct[f] * counts[f])`` never exceeds
    100 — caps are apportioned by the largest-remainder method rather
    than per-function ``ceil``, whose rounding slack (up to one point
    per function, on top of the ``min_percentage`` floor) previously
    let co-resident caps sum well past 100% and oversubscribe the GPU.
    With ``expand=True`` the sum lands exactly on 100 whenever replica
    granularity allows (a +1 on a ``counts[f]``-replica function costs
    ``counts[f]`` weighted points, so a smaller remainder can be
    unreachable).  The floor is preserved as
    ``min(min_percentage, 100 // total_replicas)`` — the largest
    uniform keep-warm share that still fits — and more than 100 total
    replicas cannot share one GPU at integer percentages at all, which
    raises :class:`ValueError`.
    """
    counts = counts if counts is not None else {name: 1 for name in needed}
    if any(counts[name] < 1 for name in needed):
        raise ValueError("every function needs at least one replica")
    replicas = sum(counts[name] for name in needed)
    if replicas == 0:
        return {}
    if replicas > 100:
        raise ValueError(
            f"{replicas} replicas cannot share one GPU at integer MPS "
            f"percentages (at most 100 at 1% each)")
    floor_pct = max(1, min(min_percentage, 100 // replicas))
    budget = 100 - floor_pct * replicas
    total = sum(sms * counts[name] for name, sms in needed.items())
    if total > 0:
        denominator = total if expand else max(total, spec.sms)
        quotas = {name: 100.0 * sms / denominator
                  for name, sms in needed.items()}
    else:
        # Nothing asked for anything: keep-warm floors only, spread the
        # whole budget evenly when expanding.
        quotas = {name: (100.0 / replicas if expand else 0.0)
                  for name in needed}
    excess = {name: max(0.0, quotas[name] - floor_pct) for name in needed}
    weighted_excess = sum(excess[name] * counts[name] for name in needed)
    if weighted_excess > 0:
        scale = budget / weighted_excess
        if not expand:
            scale = min(1.0, scale)
        targets = {name: floor_pct + scale * excess[name] for name in needed}
    else:
        targets = {name: float(floor_pct) for name in needed}
    # Integerise by largest remainder: floors first, then +1 points to
    # the function whose integer cap lags its real target the most
    # (each +1 costs counts[f] weighted points).
    pcts = {name: min(100, int(targets[name] + 1e-9)) for name in needed}
    cap = min(100, int(sum(targets[name] * counts[name]
                           for name in needed) + 1e-6))
    remaining = cap - sum(pcts[name] * counts[name] for name in needed)
    while remaining > 0:
        candidates = [name for name in needed
                      if counts[name] <= remaining and pcts[name] < 100]
        if not candidates:
            break
        pick = min(candidates,
                   key=lambda name: (pcts[name] - targets[name], name))
        pcts[pick] += 1
        remaining -= counts[pick]
    return pcts


def cooldown_elapsed(now: float, last_applied: float, cooldown: float,
                     slo_violated: bool = False,
                     slo_bypass_factor: float = 0.5) -> bool:
    """Whether a reconfiguration may fire at ``now``.

    ``last_applied`` must start at ``-inf`` so the *first* decision is
    eligible immediately — initialising it to 0 would silently suppress
    every reconfiguration in the first cooldown window, even with an
    SLO already on fire.  A hard SLO violation shrinks the cooldown by
    ``slo_bypass_factor`` (0 bypasses it outright): waiting out a
    thrash-guard makes no sense while the guarded metric is burning.
    """
    effective = cooldown * (slo_bypass_factor if slo_violated else 1.0)
    return now - last_applied >= effective


@dataclass
class ManagedFunction:
    """One serving function under autoscaler control."""

    name: str
    client: GpuClient
    #: Isolated latency (seconds) as a function of allocated SMs.
    latency_fn: Callable[[int], float]
    #: Latency SLO, seconds.
    slo_seconds: float
    #: Current offered load, requests per second (mutable).
    demand_rps: float = 0.0
    #: Weights metadata for the restart path.
    model_key: Optional[str] = None
    model_bytes: float = 0.0
    model_load_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive")
        if self.demand_rps < 0:
            raise ValueError("demand_rps must be non-negative")


@dataclass(frozen=True)
class ScalingDecision:
    """One control-loop outcome (kept for post-hoc analysis)."""

    time: float
    percentages: dict[str, int]
    applied: bool
    reason: str


class PartitionAutoscaler:
    """Periodic MPS-repartitioning controller for one GPU."""

    def __init__(
        self,
        node: ComputeNode,
        functions: list[ManagedFunction],
        gpu_index: int = 0,
        planner: Optional[ReconfigurationPlanner] = None,
        interval_seconds: float = 30.0,
        cooldown_seconds: float = 60.0,
        change_threshold_pct: int = 5,
        utilization_ceiling: float = 0.8,
        min_percentage: int = 5,
        slo_bypass_factor: float = 0.5,
    ):
        if not functions:
            raise ValueError("need at least one managed function")
        if interval_seconds <= 0 or cooldown_seconds < 0:
            raise ValueError("invalid control intervals")
        if not 0 < utilization_ceiling <= 1:
            raise ValueError("utilization_ceiling must be in (0, 1]")
        if not 0 <= slo_bypass_factor <= 1:
            raise ValueError("slo_bypass_factor must be in [0, 1]")
        self.node = node
        self.gpu_index = gpu_index
        self.functions = {f.name: f for f in functions}
        if len(self.functions) != len(functions):
            raise ValueError("function names must be unique")
        spec = node.gpus[gpu_index].spec
        self.spec = spec
        self.planner = planner if planner is not None else \
            ReconfigurationPlanner(spec)
        self.interval = interval_seconds
        self.cooldown = cooldown_seconds
        self.change_threshold = change_threshold_pct
        self.utilization_ceiling = utilization_ceiling
        self.min_percentage = min_percentage
        self.slo_bypass_factor = slo_bypass_factor
        self.decisions: list[ScalingDecision] = []
        self.reconfigurations = 0
        self.reconfiguration_downtime = 0.0
        # -inf, not 0: the first decision must be eligible immediately
        # (see cooldown_elapsed) — a zero here would silently gate every
        # reconfiguration in the first cooldown window.
        self._last_applied = -math.inf
        self._proc = None

    # -- demand input ---------------------------------------------------------
    def set_demand(self, name: str, requests_per_second: float) -> None:
        if requests_per_second < 0:
            raise ValueError("demand must be non-negative")
        self.functions[name].demand_rps = requests_per_second

    # -- sizing logic -----------------------------------------------------------
    def required_sms(self, fn: ManagedFunction) -> int:
        """Smallest SM count meeting the SLO and the stability ceiling."""
        return required_sms_for(self.spec, fn.latency_fn, fn.slo_seconds,
                                fn.demand_rps, self.utilization_ceiling)

    def desired_percentages(self) -> dict[str, int]:
        """Per-function MPS percentages for the current demand."""
        needed = {name: self.required_sms(fn)
                  for name, fn in self.functions.items()}
        return scaled_percentages(self.spec, needed,
                                  min_percentage=self.min_percentage)

    def slo_violated(self) -> bool:
        """True when some function's *current* share cannot hold its SLO.

        Either the isolated latency at the allocated SMs already exceeds
        the SLO, or the offered load saturates the share (utilisation at
        or past 1: the queue grows without bound).
        """
        for fn in self.functions.values():
            if fn.demand_rps == 0:
                continue
            latency = fn.latency_fn(max(1, round(fn.client.sm_cap)))
            if latency > fn.slo_seconds or fn.demand_rps * latency >= 1.0:
                return True
        return False

    def current_percentages(self) -> dict[str, int]:
        return {
            name: round(100 * fn.client.sm_cap / self.spec.sms)
            for name, fn in self.functions.items()
        }

    # -- control loop ------------------------------------------------------------
    def start(self):
        """Launch the control loop; returns the process handle."""
        if self._proc is not None:
            raise RuntimeError("autoscaler already started")
        self._proc = self.node.env.process(self._run())
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("autoscaler stopped")
            self._proc.defuse()

    def _run(self):
        env = self.node.env
        while True:
            yield env.timeout(self.interval)
            yield from self._tick()

    def _tick(self):
        """One control decision (exposed for deterministic tests)."""
        env = self.node.env
        desired = self.desired_percentages()
        current = self.current_percentages()
        drift = {
            name: abs(desired[name] - current[name])
            for name in self.functions
        }
        if max(drift.values()) < self.change_threshold:
            self.decisions.append(ScalingDecision(
                env.now, desired, False, "within threshold"))
            return
        if not cooldown_elapsed(env.now, self._last_applied, self.cooldown,
                                slo_violated=self.slo_violated(),
                                slo_bypass_factor=self.slo_bypass_factor):
            self.decisions.append(ScalingDecision(
                env.now, desired, False, "cooldown"))
            return
        t0 = env.now
        for name, fn in self.functions.items():
            if drift[name] < self.change_threshold:
                continue
            new_client = yield from self.planner.execute_mps_repartition(
                self.node, self.gpu_index, fn.client,
                new_percentage=desired[name],
                model_key=fn.model_key,
                model_bytes=fn.model_bytes,
                model_load_seconds=fn.model_load_seconds,
            )
            fn.client = new_client
            self.reconfigurations += 1
        self.reconfiguration_downtime += env.now - t0
        self._last_applied = env.now
        self.decisions.append(ScalingDecision(
            env.now, desired, True, "repartitioned"))
