"""Demand-driven partition autoscaling (§7's end goal).

The paper's future-work motivation: "This challenge becomes crucial as we
multiplex the applications and aim to change GPU resources depending on
demand."  This controller closes that loop on the simulator:

1. each managed function declares a latency SLO and a latency-vs-SMs
   model (a profiled :class:`~repro.partition.predictor.RuntimePredictor`
   or any callable);
2. a periodic control loop converts each function's current request rate
   into an SM requirement — enough SMs that the SLO holds *and* the
   function is stable (utilisation below a safety ceiling);
3. when requirements drift beyond a threshold and the cooldown has
   passed, the loop repartitions via the
   :class:`~repro.partition.reconfig.ReconfigurationPlanner`, paying the
   real MPS restart cost (which the §7 weight cache shrinks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.faas.providers import ComputeNode
from repro.gpu.device import GpuClient
from repro.partition.reconfig import ReconfigurationPlanner

__all__ = ["ManagedFunction", "PartitionAutoscaler", "ScalingDecision"]


@dataclass
class ManagedFunction:
    """One serving function under autoscaler control."""

    name: str
    client: GpuClient
    #: Isolated latency (seconds) as a function of allocated SMs.
    latency_fn: Callable[[int], float]
    #: Latency SLO, seconds.
    slo_seconds: float
    #: Current offered load, requests per second (mutable).
    demand_rps: float = 0.0
    #: Weights metadata for the restart path.
    model_key: Optional[str] = None
    model_bytes: float = 0.0
    model_load_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive")
        if self.demand_rps < 0:
            raise ValueError("demand_rps must be non-negative")


@dataclass(frozen=True)
class ScalingDecision:
    """One control-loop outcome (kept for post-hoc analysis)."""

    time: float
    percentages: dict[str, int]
    applied: bool
    reason: str


class PartitionAutoscaler:
    """Periodic MPS-repartitioning controller for one GPU."""

    def __init__(
        self,
        node: ComputeNode,
        functions: list[ManagedFunction],
        gpu_index: int = 0,
        planner: Optional[ReconfigurationPlanner] = None,
        interval_seconds: float = 30.0,
        cooldown_seconds: float = 60.0,
        change_threshold_pct: int = 5,
        utilization_ceiling: float = 0.8,
        min_percentage: int = 5,
    ):
        if not functions:
            raise ValueError("need at least one managed function")
        if interval_seconds <= 0 or cooldown_seconds < 0:
            raise ValueError("invalid control intervals")
        if not 0 < utilization_ceiling <= 1:
            raise ValueError("utilization_ceiling must be in (0, 1]")
        self.node = node
        self.gpu_index = gpu_index
        self.functions = {f.name: f for f in functions}
        if len(self.functions) != len(functions):
            raise ValueError("function names must be unique")
        spec = node.gpus[gpu_index].spec
        self.spec = spec
        self.planner = planner if planner is not None else \
            ReconfigurationPlanner(spec)
        self.interval = interval_seconds
        self.cooldown = cooldown_seconds
        self.change_threshold = change_threshold_pct
        self.utilization_ceiling = utilization_ceiling
        self.min_percentage = min_percentage
        self.decisions: list[ScalingDecision] = []
        self.reconfigurations = 0
        self.reconfiguration_downtime = 0.0
        self._last_applied = -math.inf
        self._proc = None

    # -- demand input ---------------------------------------------------------
    def set_demand(self, name: str, requests_per_second: float) -> None:
        if requests_per_second < 0:
            raise ValueError("demand must be non-negative")
        self.functions[name].demand_rps = requests_per_second

    # -- sizing logic -----------------------------------------------------------
    def required_sms(self, fn: ManagedFunction) -> int:
        """Smallest SM count meeting the SLO and the stability ceiling."""
        if fn.demand_rps == 0:
            return 1  # keep the model warm on a sliver
        for sms in range(1, self.spec.sms + 1):
            latency = fn.latency_fn(sms)
            if latency <= fn.slo_seconds and \
                    fn.demand_rps * latency <= self.utilization_ceiling:
                return sms
        return self.spec.sms  # best effort: the SLO is infeasible

    def desired_percentages(self) -> dict[str, int]:
        """Per-function MPS percentages for the current demand."""
        needed = {name: self.required_sms(fn)
                  for name, fn in self.functions.items()}
        total = sum(needed.values())
        scale = min(1.0, self.spec.sms / total) if total else 1.0
        return {
            name: max(self.min_percentage,
                      min(100, math.ceil(100 * sms * scale / self.spec.sms)))
            for name, sms in needed.items()
        }

    def current_percentages(self) -> dict[str, int]:
        return {
            name: round(100 * fn.client.sm_cap / self.spec.sms)
            for name, fn in self.functions.items()
        }

    # -- control loop ------------------------------------------------------------
    def start(self):
        """Launch the control loop; returns the process handle."""
        if self._proc is not None:
            raise RuntimeError("autoscaler already started")
        self._proc = self.node.env.process(self._run())
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("autoscaler stopped")
            self._proc.defuse()

    def _run(self):
        env = self.node.env
        while True:
            yield env.timeout(self.interval)
            yield from self._tick()

    def _tick(self):
        """One control decision (exposed for deterministic tests)."""
        env = self.node.env
        desired = self.desired_percentages()
        current = self.current_percentages()
        drift = {
            name: abs(desired[name] - current[name])
            for name in self.functions
        }
        if max(drift.values()) < self.change_threshold:
            self.decisions.append(ScalingDecision(
                env.now, desired, False, "within threshold"))
            return
        if env.now - self._last_applied < self.cooldown:
            self.decisions.append(ScalingDecision(
                env.now, desired, False, "cooldown"))
            return
        t0 = env.now
        for name, fn in self.functions.items():
            if drift[name] < self.change_threshold:
                continue
            new_client = yield from self.planner.execute_mps_repartition(
                self.node, self.gpu_index, fn.client,
                new_percentage=desired[name],
                model_key=fn.model_key,
                model_bytes=fn.model_bytes,
                model_load_seconds=fn.model_load_seconds,
            )
            fn.client = new_client
            self.reconfigurations += 1
        self.reconfiguration_downtime += env.now - t0
        self._last_applied = env.now
        self.decisions.append(ScalingDecision(
            env.now, desired, True, "repartitioned"))
