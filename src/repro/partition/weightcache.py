"""GPU-resident model weight sharing (§7 "Re-configuring GPU resources
Faster").

The paper's future-work proposal: keep DNN weights cached in GPU memory
across function instances, so a restarted instance (e.g. after an MPS
repartition, which *requires* a process restart) can "refer to cached
weights in the GPU and proceed with inference" instead of paying the
10-20 s reload.

The cache owns the weight allocations in each memory pool; function
instances acquire references.  Entries persist after the last reference
drops (that is the point) until evicted explicitly or by memory pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import GpuClient
from repro.gpu.memory import GpuOutOfMemory, MemoryPool

__all__ = ["WeightCache", "CacheEntry"]


@dataclass
class CacheEntry:
    key: str
    nbytes: float
    refcount: int = 0
    hits: int = 0
    last_used: float = 0.0


class WeightCache:
    """Per-node cache of GPU-resident model weights.

    Attach with ``node.weight_cache = WeightCache()``; workers then route
    :meth:`TaskContext.load_model` through it automatically.
    """

    def __init__(self):
        # Keyed by (memory pool, model key): weights live in a specific
        # pool — a whole-device HBM pool or one MIG instance's slice —
        # and are only shareable by clients of that same pool.
        self._entries: dict[tuple[int, str], CacheEntry] = {}
        self._pools: dict[int, MemoryPool] = {}
        self.hits = 0
        self.misses = 0
        self.bytes_saved = 0.0

    def _pool_key(self, client: GpuClient) -> int:
        pool = client.group.memory
        self._pools[id(pool)] = pool
        return id(pool)

    def acquire(self, client: GpuClient, key: str, nbytes: float) -> bool:
        """Take a reference on ``key`` for ``client``'s memory pool.

        Returns True on a hit (weights already resident — no load needed).
        On a miss the cache allocates the weights and the caller must
        stream them in; the allocation is owned by the cache, not the
        client, so it survives the client's restart.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        entry_key = (self._pool_key(client), key)
        entry = self._entries.get(entry_key)
        if entry is not None:
            entry.refcount += 1
            entry.hits += 1
            entry.last_used = client.device.env.now
            self.hits += 1
            self.bytes_saved += nbytes
            return True
        pool = client.group.memory
        try:
            pool.allocate(f"weight-cache:{key}", nbytes)
        except GpuOutOfMemory:
            # Try evicting unreferenced entries from this pool (LRU).
            if not self._evict_until(pool, nbytes):
                raise
            pool.allocate(f"weight-cache:{key}", nbytes)
        self._entries[entry_key] = CacheEntry(
            key=key, nbytes=nbytes, refcount=1,
            last_used=client.device.env.now,
        )
        self.misses += 1
        return False

    def release(self, client: GpuClient, key: str) -> None:
        """Drop a reference; the entry stays resident for future hits."""
        entry_key = (self._pool_key(client), key)
        entry = self._entries.get(entry_key)
        if entry is None or entry.refcount <= 0:
            raise KeyError(f"no live reference on {key!r} in this pool")
        entry.refcount -= 1

    def evict(self, client: GpuClient, key: str) -> None:
        """Forcibly remove an unreferenced entry, freeing its memory."""
        entry_key = (self._pool_key(client), key)
        entry = self._entries.get(entry_key)
        if entry is None:
            raise KeyError(f"{key!r} not cached in this pool")
        if entry.refcount > 0:
            raise RuntimeError(
                f"cannot evict {key!r}: {entry.refcount} live references"
            )
        client.group.memory.release(f"weight-cache:{key}")
        del self._entries[entry_key]

    def _evict_until(self, pool: MemoryPool, needed: float) -> bool:
        """Evict unreferenced entries of ``pool`` (LRU) until fits."""
        candidates = sorted(
            (
                (ek, e) for ek, e in self._entries.items()
                if ek[0] == id(pool) and e.refcount == 0
            ),
            key=lambda item: item[1].last_used,
        )
        for entry_key, entry in candidates:
            if pool.fits(needed):
                break
            pool.release(f"weight-cache:{entry.key}")
            del self._entries[entry_key]
        return pool.fits(needed)

    # -- introspection -----------------------------------------------------
    def refcounts(self) -> dict[str, int]:
        """Live references per model key, summed across pools, sorted.

        Pool identities are process-local (``id()``), so cross-run state
        comparisons — e.g. the resize-rollback verification in
        :mod:`repro.workloads.fleet` — use this key-level view.
        """
        out: dict[str, int] = {}
        for (_pool, key), entry in sorted(self._entries.items(),
                                          key=lambda kv: kv[0][1]):
            out[key] = out.get(key, 0) + entry.refcount
        return out

    def resident_keys(self, client: GpuClient) -> list[str]:
        pk = self._pool_key(client)
        return [k for (p, k) in self._entries if p == pk]

    def resident_bytes(self, client: GpuClient) -> float:
        pk = self._pool_key(client)
        return sum(e.nbytes for (p, _), e in self._entries.items() if p == pk)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
