"""Perf trajectory: timed kernel microbenchmarks + sweep wall-clocks.

``repro bench`` times (a) the simulation kernel's hot paths in isolation
and (b) the real paper sweeps serial vs parallel vs warm-cache, then
writes ``BENCH_<date>.json``.  Committing one such file per perf-focused
PR gives future changes a trajectory to regress against: if events/sec
or a sweep wall-clock moves the wrong way, the diff that did it is one
``git log BENCH_*.json`` away.

Schema (``repro-bench/8``)::

    {
      "schema": "repro-bench/8",
      "date": "YYYY-MM-DD",
      "git_sha": str | null,          # HEAD at collection time
      "quick": bool,                  # reduced sizes (CI smoke)
      "jobs": int,                    # worker processes for parallel runs
      "platform": {...},              # python / cpu_count
      "profile": {...} | null,        # event-loop profiler summary
                                      # (``--profile`` runs only): per-site
                                      # event counts + wall attribution from
                                      # a second, instrumented micro pass
      "micro": {name: {..., "events_per_sec" | "per_sec": float}},
      "sweeps": {name: {"configs": int,
                        "serial_seconds": float,
                        "parallel_seconds": float,
                        "warm_seconds": float,
                        "parallel_speedup": float,
                        "warm_speedup": float,
                        "cache_hit_rate": float}},
      "scale": {                      # streaming vs legacy engine
        "scenario": {...},            # fixed fleet topology + load
        "compare_n_requests": int,
        "streaming": {..., "events_per_sec": float, "rss_growth_kb": int},
        "legacy": {...},              # identical sim, pre-change engine
        "speedup": float,             # streaming / legacy events/sec
        "sharded": {                  # sharded vs single-process engine
          "n_cells": int, "cores": int,
          "events_digest": str,       # canonical merged-stream digest
          "single": {..., "events_per_sec": float},
          "sharded": {..., "worker_rss_growth_kb": [int, ...]},
          "speedup": float,           # sharded / single events/sec
          "gate": {"identical": bool, "speedup_floor": float,
                   "speedup_enforced": bool, "pass": bool}
        },
        "streaming_1m": {...}         # full runs only: 1M-request run
      },
      "resilience": {                 # chaos serving + blast radius
        "scenario": {...},            # fleet topology, rate, deadline
        "plan_events": int,           # canonical fault schedule size
        "fleet": {...},               # ResilienceStats.report payload
        "gate": {"goodput_floor_rps": float, "goodput_rps": float,
                 "lost": int, "pass": bool},
        "blast_radius": {"mig": {...}, "mps": {...},
                         "isolation_ratio": float}
      },
      "autoscale": {                  # online repartitioning closed loop
        "scenario": {...},            # diurnal two-function contest
        "closed_loop": {...},         # FleetAutoscaler-driven run
        "closed_loop_cache_off": {...},
        "static_small": {...},        # equal split, mean-sized
        "static_large": {...},        # hot-peak-sized
        "gpu_seconds_ratio": {"vs_small": float, "vs_large": float},
        "gate": {"beats_static_small": bool, "beats_static_large": bool,
                 "gpu_seconds_matched": bool,
                 "cache_shrinks_downtime": bool, "reconfigured": bool,
                 "twin_identical": bool, "lost": int, "pass": bool},
        "chaos": {                    # control-plane chaos gate
          "plan_events": int,         # canonical fault plan size
          "plan_kinds": {...},        # events per fault kind
          "run": {...},               # closed loop under the plan
          "gate": {"lost": int, "resize_aborted": bool,
                   "rollbacks_verified": bool, "degraded_detected": bool,
                   "slo_ratio_vs_fault_free": float, "slo_floor": float,
                   "twin_identical": bool, "pass": bool}
        }
      },
      "cluster": {                    # cluster-scale placement contest
        "contest": {                  # 500-GPU / 50-function packing
          "inventory": {spec: int}, "n_gpus": int, "n_functions": int,
          "greedy": {..., "gpus_used": int, "in_slo_fraction": float,
                     "digest": str},
          "optimized": {...},         # tail right-sizing + repacking
          "mps_caps": {...},          # per-packer worst weighted cap sum
          "max_weighted_cap_sum": int
        },
        "feedback": {...},            # fleet->cluster drift replanning
        "gate": {"fewer_gpus": bool, "in_slo_within_tolerance": bool,
                 "rejections_match": bool, "caps_bounded": bool,
                 "twin_identical": bool, "pass": bool}
      }
    }

``/1`` reports lack the ``scale`` section, ``/2`` reports the
``resilience`` section, ``/3`` reports the ``autoscale`` section, ``/4``
reports the ``scale.sharded`` subsection, ``/5`` reports
``git_sha``/``profile``, ``/7`` reports the ``autoscale.chaos``
subsection, and ``/8`` reports the ``cluster`` section; everything else
is unchanged, so trajectory tooling can read all eight (readers must
tolerate missing keys).
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import time
from typing import Optional

from repro.runner import ResultCache, SweepRunner, default_cache_dir

__all__ = ["collect_bench", "write_bench_json", "default_bench_path"]


# ------------------------------------------------------------------ micro

def _bench_event_queue(n: int) -> dict:
    from repro.sim.core import Environment

    env = Environment()
    t0 = time.perf_counter()
    for i in range(n):
        env.timeout(float(i % 97))
    env.run()
    dt = time.perf_counter() - t0
    return {"n_events": env.events_processed, "seconds": dt,
            "events_per_sec": env.events_processed / dt}


def _bench_fluid_churn(n_tasks: int) -> dict:
    from repro.sim.core import Environment
    from repro.sim.fluid import FluidPool, FluidTask

    env = Environment()

    def equal(tasks):
        share = 100.0 / len(tasks)
        for t in tasks:
            t.rate = share

    pool = FluidPool(env, equal)

    def submitter(env):
        for i in range(n_tasks):
            pool.add(FluidTask(env, work=float(1 + i % 13)))
            yield env.timeout(0.05)

    env.process(submitter(env))
    t0 = time.perf_counter()
    env.run()
    dt = time.perf_counter() - t0
    return {"n_tasks": n_tasks, "seconds": dt, "per_sec": n_tasks / dt,
            "events_per_sec": env.events_processed / dt}


def _bench_gpu_allocator(n_clients: int, n_kernels: int) -> dict:
    """The fig4-shaped hot path: MPS clients streaming decode kernels."""
    from repro.gpu.device import SimulatedGPU
    from repro.gpu.mps import MpsControlDaemon
    from repro.gpu.specs import A100_80GB
    from repro.sim.core import Environment
    from repro.workloads.llm import LLAMA2_7B, InferenceRuntime, LlamaInference

    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    llm = LlamaInference(LLAMA2_7B, InferenceRuntime(dtype_bytes=2))

    def stream(env, client):
        for _ in range(n_kernels):
            yield client.launch(llm.decode_kernel())
            yield env.timeout(llm.host_seconds_per_token)

    procs = [env.process(stream(env, daemon.client(f"c{i}")))
             for i in range(n_clients)]
    t0 = time.perf_counter()
    env.run(until=env.all_of(procs))
    dt = time.perf_counter() - t0
    total = n_clients * n_kernels
    return {"n_kernels": total, "seconds": dt, "per_sec": total / dt,
            "events_per_sec": env.events_processed / dt}


def _bench_decode_kernel(n: int) -> dict:
    """Kernel-construction path (memoised after the first call)."""
    from repro.workloads.llm import LLAMA2_7B, InferenceRuntime, LlamaInference

    llm = LlamaInference(LLAMA2_7B, InferenceRuntime(dtype_bytes=2))
    t0 = time.perf_counter()
    for _ in range(n):
        llm.decode_kernel()
    dt = time.perf_counter() - t0
    return {"n_calls": n, "seconds": dt, "per_sec": n / dt}


# ------------------------------------------------------------------ sweeps

def _sweep_fns(quick: bool) -> dict:
    """Name -> zero-arg callable taking a runner, returning result count."""
    from repro.bench.llm_experiments import fig2_sm_sweep, fig4_fig5_sweep

    if quick:
        fig2_pcts = (25, 50, 75, 100)
        fig2_tokens = 5
        fig45 = {"process_counts": (1, 2), "n_completions": 4, "n_tokens": 5}
    else:
        fig2_pcts = tuple(range(5, 101, 5))
        fig2_tokens = 20
        fig45 = {"process_counts": (1, 2, 3, 4), "n_completions": 100,
                 "n_tokens": 20}
    return {
        "fig2_sm_sweep": lambda runner: len(sum(
            fig2_sm_sweep(fig2_pcts, n_tokens=fig2_tokens,
                          runner=runner).values(), [])),
        "fig4_fig5_sweep": lambda runner: len(
            fig4_fig5_sweep(runner=runner, **fig45)),
    }


def _time_sweep(fn, jobs: int) -> dict:
    """Time one sweep serial (no cache), parallel cold, then warm."""
    cache_root = os.path.join(default_cache_dir(), "bench")
    cache = ResultCache(root=cache_root)
    cache.clear()  # a stale entry would fake the "cold" measurement

    t0 = time.perf_counter()
    n_configs = fn(SweepRunner(jobs=1, cache=None))
    serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    fn(SweepRunner(jobs=jobs, cache=cache))
    parallel = time.perf_counter() - t0

    warm_cache = ResultCache(root=cache_root)  # fresh stats, same disk
    t0 = time.perf_counter()
    fn(SweepRunner(jobs=jobs, cache=warm_cache))
    warm = time.perf_counter() - t0

    return {
        "configs": n_configs,
        "serial_seconds": serial,
        "parallel_seconds": parallel,
        "warm_seconds": warm,
        "parallel_speedup": serial / parallel if parallel > 0 else 0.0,
        "warm_speedup": serial / warm if warm > 0 else 0.0,
        "cache_hit_rate": warm_cache.hit_rate,
    }


# ------------------------------------------------------------------ driver

def _git_sha() -> Optional[str]:
    """HEAD commit of the source tree, or ``None`` outside a checkout."""
    import subprocess

    root = os.path.dirname(default_bench_path())
    try:
        out = subprocess.run(
            ["git", "-C", root, "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _run_micro(micro_sizes: dict) -> dict:
    return {
        "event_queue": _bench_event_queue(*micro_sizes["event_queue"]),
        "fluid_churn": _bench_fluid_churn(*micro_sizes["fluid_churn"]),
        "gpu_allocator": _bench_gpu_allocator(*micro_sizes["gpu_allocator"]),
        "decode_kernel": _bench_decode_kernel(*micro_sizes["decode_kernel"]),
    }


def collect_bench(quick: bool = False, jobs: Optional[int] = None,
                  profile: bool = False) -> dict:
    """Run every microbenchmark and sweep timing; return the report dict.

    With ``profile=True`` the micro suite runs a second time under the
    event-loop profiler and the per-site attribution summary lands in
    the ``profile`` section — the timed numbers always come from the
    uninstrumented pass, so profiled and plain reports stay comparable.
    """
    if jobs is None:
        from repro.runner import default_jobs

        jobs = default_jobs()
    micro_sizes = {
        "event_queue": (20_000,) if quick else (200_000,),
        "fluid_churn": (300,) if quick else (2_000,),
        "gpu_allocator": (4, 50) if quick else (4, 400),
        "decode_kernel": (2_000,) if quick else (50_000,),
    }
    micro = _run_micro(micro_sizes)
    profile_summary = None
    if profile:
        from repro.profile import profiling

        with profiling() as prof:
            _run_micro(micro_sizes)
        profile_summary = prof.summary(top=10)
    sweeps = {name: _time_sweep(fn, jobs)
              for name, fn in _sweep_fns(quick).items()}
    from repro.bench.autoscale_experiments import autoscale_report
    from repro.bench.cluster_experiments import cluster_report
    from repro.bench.resilience_experiments import resilience_report
    from repro.bench.scale_experiments import scale_report

    scale = scale_report(quick=quick)
    resilience = resilience_report(quick=quick)
    autoscale = autoscale_report(quick=quick)
    cluster = cluster_report(quick=quick)
    return {
        "schema": "repro-bench/8",
        "date": datetime.date.today().isoformat(),
        "git_sha": _git_sha(),
        "quick": quick,
        "jobs": jobs,
        "platform": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "profile": profile_summary,
        "micro": micro,
        "sweeps": sweeps,
        "scale": scale,
        "resilience": resilience,
        "autoscale": autoscale,
        "cluster": cluster,
    }


def default_bench_path(date: Optional[str] = None) -> str:
    """``<repo>/BENCH_<date>.json`` (the repo root holding ``src/``)."""
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    date = date or datetime.date.today().isoformat()
    return os.path.join(root, f"BENCH_{date}.json")


def write_bench_json(path: Optional[str] = None, quick: bool = False,
                     jobs: Optional[int] = None,
                     profile: bool = False) -> tuple[str, dict]:
    """Collect the report and write it; returns ``(path, report)``."""
    report = collect_bench(quick=quick, jobs=jobs, profile=profile)
    path = path or default_bench_path(report["date"])
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path, report
