"""Shared harness utilities: table formatting and result persistence."""

from __future__ import annotations

import os
from typing import Sequence

__all__ = ["format_table", "save_results", "results_dir"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Render an aligned plain-text table (the bench output format)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def results_dir() -> str:
    """Directory bench outputs are written to (created on demand)."""
    path = os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "results"),
    )
    os.makedirs(path, exist_ok=True)
    return path


def save_results(name: str, text: str) -> str:
    """Persist one experiment's table to ``results/<name>.txt``."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text.rstrip() + "\n")
    return path
