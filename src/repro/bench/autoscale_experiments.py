"""Autoscale benchmark (the ``autoscale`` section of ``repro bench``).

The §7 closed loop, scored: two serving functions with anti-correlated
diurnal demand (their peaks half a period apart) share one A100-80GB
through flat MPS.  Three layouts compete at matched provisioned
capacity (summed per-replica caps ~= 100% of the GPU in every
configuration, so GPU-seconds are equal by construction):

- **static-small** — the GPU split equally, sized for the *mean*: the
  hot function's peak saturates its caps and sheds;
- **static-large** — the hot function peak-sized, the cold one starved:
  now the *cold* peak sheds;
- **closed-loop** — the :class:`~repro.workloads.autoscale.FleetAutoscaler`
  re-negotiates MPS shares online, paying real
  :class:`~repro.partition.reconfig.ReconfigCost` drain/restart windows.

The score is the in-SLO fraction of *offered* load (``slo_ok /
offered``): shed requests count against a layout, so admission control
cannot shed its way to a win.  The CI gate requires the closed loop to
beat both statics, its GPU-seconds to stay within tolerance of theirs,
the weight cache to strictly shrink mean restart downtime versus a
cache-off twin, zero lost requests everywhere, and twin closed-loop
runs to be bit-identical (determinism survives resize events).

The ``chaos`` subsection replays the closed loop under the *canonical
control-plane fault plan* (:func:`canonical_control_plane_plan`): stuck
resize drains, corrupt weight-cache entries, telemetry dropouts, and
inflated offered counters, all seeded and replayable.  Its gate demands
the serving plane conserve every request (zero lost), every aborted
resize prove its rollback, the controller actually detect the bad
sensors (>= 1 degraded tick), the in-SLO fraction stay at or above
``SLO_CHAOS_FLOOR`` x the fault-free closed loop, and twin chaos runs
stay bit-identical.
"""

from __future__ import annotations

import json
import math

__all__ = ["autoscale_chaos_report", "autoscale_fleet_report",
           "autoscale_report", "build_autoscale_fleet",
           "canonical_control_plane_plan", "run_autoscale_fleet"]

#: Two functions x three replicas over one A100-80GB.
N_REPLICAS = 3
SLO_SECONDS = 6.0
N_TOKENS = 16

#: Diurnal demand: the hot function carries 2x the cold one's mean, and
#: the cold peak lands half a period after the hot peak (phase pi).
HOT_MEAN_RPS = 0.9
COLD_MEAN_RPS = 0.45
PERIOD_SECONDS = 600.0
DEPTH = 0.8

#: Per-replica MPS percentages.  Every layout's replica-weighted sum is
#: 99% of the GPU — the closest an integer 3+3-replica split gets to
#: 100 — matching the bound the repaired ``scaled_percentages`` now
#: enforces on the closed loop, so the contest is about *where* the SMs
#: sit, not how many are provisioned.
STATIC_SMALL = {"hot": 17, "cold": 16}   # equal split, mean-sized
STATIC_LARGE = {"hot": 27, "cold": 6}    # hot-peak-sized, cold starved

#: Controller cadence.
INTERVAL_SECONDS = 30.0
COOLDOWN_SECONDS = 120.0

#: GPU-seconds fairness tolerance between layouts.
GPU_SECONDS_TOLERANCE = 0.10

#: Canonical control-plane fault plan (the ``chaos`` subsection): MTBFs
#: sized so a quick 600 s run still sees stuck drains collide with
#: resizes and at least one telemetry fault span a control tick.
CHAOS_STUCK_MTBF = 100.0
CHAOS_STUCK_DURATION = 150.0
CHAOS_CACHE_MTBF = 300.0
CHAOS_DROPOUT_MTBF = 300.0
CHAOS_DROPOUT_DURATION = 75.0
CHAOS_CORRUPT_MTBF = 250.0
CHAOS_CORRUPT_DURATION = 60.0
CHAOS_CORRUPT_FACTOR = 8.0
#: The chaos run must keep at least this fraction of the fault-free
#: closed loop's in-SLO fraction.
SLO_CHAOS_FLOOR = 0.8


def canonical_control_plane_plan(horizon: float, seed: int = 0):
    """The control-plane chaos schedule the bench and CI replay.

    Four independent Poisson fault classes, one sub-seed each (so
    adding a class never perturbs the others), merged by time:
    ``resize_stuck`` holds, ``cache_load_failure`` corruptions,
    ``sensor_dropout`` freezes, and ``telemetry_corruption`` inflation.
    """
    from repro.faas.chaos import FaultPlan

    stuck = FaultPlan.exponential(
        "resize_stuck", CHAOS_STUCK_MTBF, horizon, seed=seed * 10 + 2,
        duration=CHAOS_STUCK_DURATION)
    cache = FaultPlan.exponential(
        "cache_load_failure", CHAOS_CACHE_MTBF, horizon,
        seed=seed * 10 + 3)
    dropout = FaultPlan.exponential(
        "sensor_dropout", CHAOS_DROPOUT_MTBF, horizon, seed=seed * 10 + 5,
        duration=CHAOS_DROPOUT_DURATION)
    corrupt = FaultPlan.exponential(
        "telemetry_corruption", CHAOS_CORRUPT_MTBF, horizon,
        seed=seed * 10 + 7, duration=CHAOS_CORRUPT_DURATION,
        factor=CHAOS_CORRUPT_FACTOR)
    return stuck.merge(cache, dropout, corrupt)


def _clients(env, fleet, horizon: float, trace_seeds: tuple = (1, 2)):
    from repro.workloads.serving import OpenLoopClient
    from repro.workloads.traces import iter_diurnal_trace

    hot = OpenLoopClient(
        env, fleet.groups["hot"].router, n_tokens=N_TOKENS, streaming=True,
        arrivals=iter_diurnal_trace(HOT_MEAN_RPS, horizon,
                                    period=PERIOD_SECONDS, depth=DEPTH,
                                    seed=trace_seeds[0]))
    cold = OpenLoopClient(
        env, fleet.groups["cold"].router, n_tokens=N_TOKENS, streaming=True,
        arrivals=iter_diurnal_trace(COLD_MEAN_RPS, horizon,
                                    period=PERIOD_SECONDS, depth=DEPTH,
                                    seed=trace_seeds[1], phase=math.pi))
    return hot, cold


def build_autoscale_fleet(env, horizon: float, autoscale: bool,
                          pcts: dict[str, int],
                          weight_cache: bool = True, seed: int = 0,
                          trace_seeds: tuple = (1, 2),
                          on_completion=None, plan=None) -> tuple:
    """Construct one diurnal contest scenario inside ``env``.

    Returns ``(fleet, autoscaler, clients, chaos)``.  Shared by the
    single-process runner and the sharded simulation's autoscale cells
    — one construction path, so the differential tests can demand
    bit-identity.  ``on_completion`` taps every function group's stats
    *before* the autoscaler attaches its monitors (the autoscaler
    chains onto an installed tap rather than replacing it);
    ``trace_seeds`` re-seeds the hot/cold diurnal arrival traces so
    extra cells carry independent demand.  ``plan`` (a
    :class:`~repro.faas.chaos.FaultPlan`) attaches a
    :class:`~repro.faas.chaos.ChaosController` replaying it against the
    fleet; ``chaos`` is ``None`` without one.
    """
    from repro.faas.chaos import ChaosController
    from repro.workloads.autoscale import FleetAutoscaler
    from repro.workloads.fleet import AutoscaledServingFleet, FleetFunction

    functions = [
        FleetFunction("hot", N_REPLICAS, SLO_SECONDS, pcts["hot"],
                      n_tokens=N_TOKENS),
        FleetFunction("cold", N_REPLICAS, SLO_SECONDS, pcts["cold"],
                      n_tokens=N_TOKENS),
    ]
    fleet = AutoscaledServingFleet(env, functions, seed=seed,
                                   weight_cache=weight_cache)
    if on_completion is not None:
        for group in fleet.groups.values():
            group.stats.on_completion = on_completion
    autoscaler = None
    if autoscale:
        autoscaler = FleetAutoscaler(
            fleet, interval_seconds=INTERVAL_SECONDS,
            cooldown_seconds=COOLDOWN_SECONDS)
        autoscaler.start()
    chaos = None
    if plan is not None:
        chaos = ChaosController(env, fleet, plan, horizon=horizon)
    clients = _clients(env, fleet, horizon, trace_seeds)
    return fleet, autoscaler, clients, chaos


def autoscale_fleet_report(env, fleet, autoscaler, autoscale: bool,
                           weight_cache: bool,
                           pcts: dict[str, int], chaos=None) -> dict:
    """Assemble the comparable report dict for a finished run."""
    functions_report = fleet.report(env.now)
    offered = sum(r["offered"] for r in functions_report.values())
    slo_ok = sum(r["slo_ok"] for r in functions_report.values())
    lost = sum(r["lost"] for r in functions_report.values())
    return {
        "autoscale": autoscale,
        "weight_cache": weight_cache,
        "initial_pcts": dict(pcts),
        "final_pcts": {name: group.current_pct
                       for name, group in fleet.groups.items()},
        "offered": offered,
        "slo_ok": slo_ok,
        "lost": lost,
        "slo_good_fraction": slo_ok / offered if offered else 0.0,
        "gpu_seconds": fleet.provisioned_gpu_seconds(),
        "sim_seconds": env.now,
        "events": env.events_processed,
        "faults": dict(sorted(fleet.faults.items())),
        "faults_applied": sum(fleet.faults.values()),
        "chaos_log": None if chaos is None else [
            [t, kind, desc] for t, kind, desc in chaos.applied],
        "functions": functions_report,
        "autoscaler": None if autoscaler is None else autoscaler.summary(),
    }


def run_autoscale_fleet(horizon: float, autoscale: bool,
                        pcts: dict[str, int],
                        weight_cache: bool = True,
                        seed: int = 0, plan=None) -> dict:
    """One diurnal serving run; returns the comparable report dict.

    ``pcts`` sets the initial per-replica MPS percentages; with
    ``autoscale=False`` they are also final (a static layout).  ``plan``
    replays a fault plan against the fleet.  The returned dict is the
    payload the determinism gate compares verbatim across twin runs.
    """
    from repro.sim.core import Environment

    env = Environment()
    fleet, autoscaler, clients, chaos = build_autoscale_fleet(
        env, horizon, autoscale, pcts, weight_cache=weight_cache,
        seed=seed, plan=plan)
    env.run(until=env.all_of([c.done for c in clients]))
    if autoscaler is not None:
        autoscaler.stop()
    return autoscale_fleet_report(env, fleet, autoscaler, autoscale,
                                  weight_cache, pcts, chaos=chaos)


def autoscale_chaos_report(horizon: float, fault_free: dict,
                           seed: int = 0) -> dict:
    """The ``chaos`` subsection: the closed loop under control-plane
    faults, scored against its own fault-free run."""
    plan = canonical_control_plane_plan(horizon, seed=seed)
    chaos = run_autoscale_fleet(horizon, True, STATIC_SMALL, seed=seed,
                                plan=plan)
    twin = run_autoscale_fleet(horizon, True, STATIC_SMALL, seed=seed,
                               plan=plan)
    twin_identical = (json.dumps(chaos, sort_keys=True)
                      == json.dumps(twin, sort_keys=True))
    ctrl = chaos["autoscaler"]
    base = fault_free["slo_good_fraction"]
    slo_ratio = chaos["slo_good_fraction"] / base if base else 0.0
    gate = {
        "lost": chaos["lost"],
        "resize_aborted": ctrl["resize_aborts"] >= 1,
        "rollbacks_verified": (ctrl["resize_rollbacks"]
                               == ctrl["resize_aborts"]),
        "degraded_detected": ctrl["degraded_ticks"] >= 1,
        "slo_ratio_vs_fault_free": slo_ratio,
        "slo_floor": SLO_CHAOS_FLOOR,
        "twin_identical": twin_identical,
    }
    gate["pass"] = (gate["lost"] == 0
                    and gate["resize_aborted"]
                    and gate["rollbacks_verified"]
                    and gate["degraded_detected"]
                    and slo_ratio >= SLO_CHAOS_FLOOR
                    and twin_identical)
    kinds: dict[str, int] = {}
    for event in plan:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    return {
        "plan_events": len(plan),
        "plan_kinds": dict(sorted(kinds.items())),
        "run": chaos,
        "gate": gate,
    }


def autoscale_report(quick: bool = False, seed: int = 0) -> dict:
    """The ``autoscale`` section of ``BENCH_<date>.json``."""
    # Two full diurnal periods even in quick mode: the closed loop pays
    # real reconfiguration downtime up front and can no longer recoup
    # it through the (fixed) >100% cap oversubscription, so a single
    # 600 s period is not enough runway to amortise the investment.
    horizon = 1200.0 if quick else 1800.0
    closed = run_autoscale_fleet(horizon, True, STATIC_SMALL, seed=seed)
    twin = run_autoscale_fleet(horizon, True, STATIC_SMALL, seed=seed)
    cache_off = run_autoscale_fleet(horizon, True, STATIC_SMALL,
                                    weight_cache=False, seed=seed)
    small = run_autoscale_fleet(horizon, False, STATIC_SMALL, seed=seed)
    large = run_autoscale_fleet(horizon, False, STATIC_LARGE, seed=seed)
    twin_identical = (json.dumps(closed, sort_keys=True)
                      == json.dumps(twin, sort_keys=True))

    def ratio(a: float, b: float) -> float:
        return a / b if b else 0.0

    gpu_ratios = {
        "vs_small": ratio(closed["gpu_seconds"], small["gpu_seconds"]),
        "vs_large": ratio(closed["gpu_seconds"], large["gpu_seconds"]),
    }
    gate = {
        "beats_static_small": (closed["slo_good_fraction"]
                               >= small["slo_good_fraction"]),
        "beats_static_large": (closed["slo_good_fraction"]
                               >= large["slo_good_fraction"]),
        "gpu_seconds_matched": all(
            abs(r - 1.0) <= GPU_SECONDS_TOLERANCE
            for r in gpu_ratios.values()),
        "cache_shrinks_downtime": (
            closed["autoscaler"]["mean_restart_downtime"]
            < cache_off["autoscaler"]["mean_restart_downtime"]),
        "reconfigured": closed["autoscaler"]["reconfigurations"] >= 1,
        "twin_identical": twin_identical,
        "lost": (closed["lost"] + cache_off["lost"]
                 + small["lost"] + large["lost"]),
    }
    gate["pass"] = (gate["beats_static_small"]
                    and gate["beats_static_large"]
                    and gate["gpu_seconds_matched"]
                    and gate["cache_shrinks_downtime"]
                    and gate["reconfigured"]
                    and gate["twin_identical"]
                    and gate["lost"] == 0)
    return {
        "scenario": {
            "gpu": "A100_80GB",
            "model": "llama2-7b int8",
            "functions": {
                "hot": {"replicas": N_REPLICAS, "mean_rps": HOT_MEAN_RPS,
                        "phase": 0.0},
                "cold": {"replicas": N_REPLICAS, "mean_rps": COLD_MEAN_RPS,
                         "phase": "pi"},
            },
            "period_seconds": PERIOD_SECONDS,
            "depth": DEPTH,
            "slo_seconds": SLO_SECONDS,
            "n_tokens": N_TOKENS,
            "horizon_seconds": horizon,
            "interval_seconds": INTERVAL_SECONDS,
            "cooldown_seconds": COOLDOWN_SECONDS,
        },
        "closed_loop": closed,
        "closed_loop_cache_off": cache_off,
        "static_small": small,
        "static_large": large,
        "gpu_seconds_ratio": gpu_ratios,
        "chaos": autoscale_chaos_report(horizon, closed, seed=seed),
        "gate": gate,
    }
