"""Million-request trace-serving scale benchmark (``repro bench``).

The paper's sweeps are many *small* simulations; this scenario is one
*large* one, sized to exercise the engine work that dominates at FaaS
fleet scale: a fully-partitioned A100-80GB (7 x ``1g.10gb`` MIG
instances, each running an MPS daemon with 16 serving functions)
under a sustained open-loop Poisson load of up to a million requests.

Two engine configurations run the identical scenario:

- ``streaming`` — the current engine: incremental allocator, pooled
  timeouts, chunked gap draws, and streaming accumulators (no
  per-request retention anywhere), so memory stays bounded however long
  the trace.
- ``legacy`` — the pre-incremental engine, reconstructed via the
  compatibility switches: ``SimulatedGPU(incremental=False)`` (full
  hierarchical recompute on every membership change),
  ``Environment(pooling=False)`` (a fresh Timeout per event), and the
  retaining client/server (every request and latency kept in lists).

Both produce the same simulated clock and the same per-request
latencies — the engines differ only in wall-clock and RSS, which is
what the report records.  Each engine runs in a forked subprocess so
``ru_maxrss`` growth measures that engine alone.
"""

from __future__ import annotations

import multiprocessing
import resource
import time
from typing import Optional

__all__ = ["build_trace_serving", "trace_serving_metrics",
           "trace_serving_scale", "scale_report", "sharded_scale_benchmark"]

#: The fixed fleet topology (see module docstring).  Batch size 1 with
#: 16-token completions is the paper's fine-grained sharing regime: many
#: small kernels from many co-resident functions, which maximises
#: allocator churn (the engine cost this benchmark isolates).
N_INSTANCES = 7
SERVERS_PER_INSTANCE = 16
MAX_BATCH_SIZE = 1
N_TOKENS = 16

#: Total offered load over the whole fleet, requests/second.  Must stay
#: below fleet capacity or queues (and, in legacy mode, memory) grow
#: without bound.  At batch size 1 the fleet is GPU-bound: capacity
#: measures ~4.07 rps regardless of server count, so 3.88 rps ~= 95%
#: utilisation — heavy enough that nearly every server keeps a kernel
#: resident (~112 concurrent fluid tasks), light enough to stay stable.
DEFAULT_RATE_RPS = 3.88


def build_trace_serving(env, n_requests: int, rate_rps: float, seed: int,
                        streaming: bool = True, stats=None) -> dict:
    """Construct the canonical scale fleet inside ``env``; return handles.

    One fully-partitioned A100-80GB (7 x ``1g.10gb``, 16 MPS serving
    functions each) plus its open-loop clients.  Shared by the bench
    engines and the sharded simulation cells, so both build the
    *identical* scenario — the bit-identity the differential tests
    assert rests on this single construction path.

    ``stats`` (any object with ``add(latency)``) is handed to every
    streaming client; pass a recording wrapper to tap completions.
    Returns ``{"gpu", "manager", "servers", "clients", "stats",
    "n_servers", "n_requests"}``.
    """
    import numpy as np

    from repro.gpu.device import SimulatedGPU
    from repro.gpu.mig import MigManager
    from repro.gpu.specs import A100_80GB
    from repro.telemetry.streaming import StreamingLatencyStats
    from repro.workloads.llm import LLAMA2_7B, InferenceRuntime, LlamaInference
    from repro.workloads.serving import InferenceServer, OpenLoopClient

    # Pin cross_check off: this is a performance measurement, and an
    # inherited REPRO_ALLOC_CHECK=1 would make the incremental engine
    # run the full recompute after every allocation anyway.
    gpu = SimulatedGPU(env, A100_80GB, incremental=streaming,
                       cross_check=False)
    manager = MigManager(gpu)
    env.run(until=env.process(manager.enable()))
    # int8 weights: LLaMa-2-7B fits a 1g.10gb slice.
    llm = LlamaInference(LLAMA2_7B, InferenceRuntime(dtype_bytes=1))

    n_servers = N_INSTANCES * SERVERS_PER_INSTANCE
    if streaming and stats is None:
        stats = StreamingLatencyStats()
    servers: list[InferenceServer] = []
    clients: list[OpenLoopClient] = []
    per_server = max(1, n_requests // n_servers)
    for i in range(N_INSTANCES):
        instance = manager.create_instance("1g.10gb")
        daemon = instance.enable_mps()
        for j in range(SERVERS_PER_INSTANCE):
            k = i * SERVERS_PER_INSTANCE + j
            server = InferenceServer(
                env, daemon.client(f"srv{k}"), llm,
                max_batch_size=MAX_BATCH_SIZE,
                keep_completed=not streaming,
                kernel_cache=streaming)
            servers.append(server)
            clients.append(OpenLoopClient(
                env, server, rate_rps=rate_rps / n_servers,
                n_requests=per_server, n_tokens=N_TOKENS,
                rng=np.random.default_rng(seed + k),
                streaming=streaming, stats=stats))
    return {"gpu": gpu, "manager": manager, "servers": servers,
            "clients": clients, "stats": stats, "n_servers": n_servers,
            "n_requests": per_server * n_servers}


def trace_serving_metrics(env, handles: dict, engine: str,
                          rate_rps: float) -> dict:
    """The deterministic half of the engine metrics dict.

    Everything here is a pure function of (seed, config) — wall clock
    and RSS are layered on by :func:`_run_engine`, and excluded when
    the differential tests compare sharded against single-process runs.
    """
    from repro.telemetry import summarize

    streaming = engine == "streaming"
    if streaming:
        lat = handles["stats"].stats()
    else:
        lat = summarize([r.latency for s in handles["servers"]
                         for r in s.completed])
    gpu = handles["gpu"]
    return {
        "engine": engine,
        "n_requests": handles["n_requests"],
        "n_servers": handles["n_servers"],
        "rate_rps": rate_rps,
        "sim_seconds": env.now,
        "events": env.events_processed,
        "alloc_calls": gpu.alloc_calls,
        "alloc_group_recomputes": gpu.alloc_group_recomputes,
        "latency": {
            "count": lat.count,
            "mean": lat.mean,
            "p50": lat.p50,
            "p95": lat.p95,
            "p99": lat.p99,
            "min": lat.minimum,
            "max": lat.maximum,
        },
    }


def _run_engine(engine: str, n_requests: int, rate_rps: float,
                seed: int) -> dict:
    """Run one engine configuration inline; returns the metrics dict."""
    from repro.sim.core import Environment

    if engine not in ("streaming", "legacy"):
        raise ValueError(f"unknown engine {engine!r}")
    streaming = engine == "streaming"

    env = Environment(pooling=streaming)
    handles = build_trace_serving(env, n_requests, rate_rps, seed,
                                  streaming=streaming)

    rss0 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    t0 = time.perf_counter()
    env.run(until=env.all_of([c.done for c in handles["clients"]]))
    wall = time.perf_counter() - t0
    rss1 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    metrics = trace_serving_metrics(env, handles, engine, rate_rps)
    metrics["wall_seconds"] = wall
    metrics["events_per_sec"] = (env.events_processed / wall
                                 if wall > 0 else 0.0)
    metrics["rss_growth_kb"] = max(0, rss1 - rss0)
    return metrics


def _subprocess_target(conn, engine, n_requests, rate_rps, seed):
    try:
        conn.send(_run_engine(engine, n_requests, rate_rps, seed))
    except BaseException as exc:  # pragma: no cover - forwarded to parent
        conn.send({"error": f"{type(exc).__name__}: {exc}"})
    finally:
        conn.close()


def trace_serving_scale(engine: str, n_requests: int,
                        rate_rps: float = DEFAULT_RATE_RPS,
                        seed: int = 0, isolate: bool = True) -> dict:
    """Run the scale scenario under one engine; returns the metrics dict.

    With ``isolate=True`` (the default) the run happens in a forked
    child process, so its ``rss_growth_kb`` is not polluted by whatever
    the parent allocated before — ``ru_maxrss`` is a process-lifetime
    high-water mark, and a big earlier run would otherwise mask a small
    later one.
    """
    if not isolate:
        return _run_engine(engine, n_requests, rate_rps, seed)
    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_subprocess_target,
                       args=(child, engine, n_requests, rate_rps, seed))
    proc.start()
    child.close()
    try:
        result = parent.recv()
    finally:
        proc.join()
        parent.close()
    if "error" in result:
        raise RuntimeError(f"scale run failed in subprocess: {result['error']}")
    return result


#: Sharded-bench shape: one cell per MIG-partitioned device, matching
#: the canonical topology, so the ideal speedup is ``min(cores, 7)``.
SHARDED_N_CELLS = 7
#: Events/sec floor for sharded vs single-process on a multi-core
#: runner (the gate is advisory on smaller machines — there is nothing
#: to parallelise onto).
SHARDED_SPEEDUP_FLOOR = 5.0
SHARDED_MIN_CORES = 6


def sharded_scale_benchmark(quick: bool = False, seed: int = 0,
                            n_requests_per_cell: Optional[int] = None,
                            n_cells: int = SHARDED_N_CELLS,
                            n_shards: Optional[int] = None,
                            epoch_seconds: float = 60.0) -> dict:
    """The ``sharded`` subsection of the ``scale`` bench section.

    Runs the identical ``n_cells``-device workload twice — once
    in-process on one shard (the current streaming engine, serialised)
    and once over ``n_shards`` worker processes — then gates on two
    things: the deterministic payloads must be bit-identical (shard
    count is an execution detail, not a model input), and on a
    multi-core runner (>= ``SHARDED_MIN_CORES`` cores) the sharded run
    must clear ``SHARDED_SPEEDUP_FLOOR``x the single-process events/sec.
    Worker RSS growth is reported per shard so a leak in any one cell
    process is visible rather than averaged away.
    """
    import json
    import os

    from repro.workloads.shardcells import sharded_scale_report

    per_cell = n_requests_per_cell or (400 if quick else 4_000)
    cores = os.cpu_count() or 1
    if n_shards is None:
        n_shards = min(n_cells, cores)

    def timed(shards: int, use_processes: bool) -> tuple:
        t0 = time.perf_counter()
        out = sharded_scale_report(n_cells, shards, per_cell, seed=seed,
                                   epoch_seconds=epoch_seconds,
                                   use_processes=use_processes)
        wall = time.perf_counter() - t0
        events = out["merged"]["events_processed"]
        summary = {
            "shards": shards,
            "processes": use_processes,
            "events": events,
            "n_requests": out["merged"]["n_requests"],
            "wall_seconds": wall,
            "events_per_sec": events / wall if wall > 0 else 0.0,
            "worker_rss_growth_kb": out["execution"]["worker_rss_growth_kb"],
            "worker_respawns": out["execution"]["worker_respawns"],
        }
        return out, summary

    single_out, single = timed(1, use_processes=False)
    sharded_out, sharded = timed(n_shards, use_processes=True)

    def payload(out: dict) -> str:
        return json.dumps({k: v for k, v in out.items()
                           if k != "execution"}, sort_keys=True,
                          default=repr)

    identical = payload(single_out) == payload(sharded_out)
    speedup = (sharded["events_per_sec"] / single["events_per_sec"]
               if single["events_per_sec"] > 0 else 0.0)
    enforced = cores >= SHARDED_MIN_CORES and n_shards >= SHARDED_SPEEDUP_FLOOR
    gate = {
        "identical": identical,
        "speedup_floor": SHARDED_SPEEDUP_FLOOR,
        "speedup": speedup,
        "speedup_enforced": enforced,
        "pass": identical and (not enforced
                               or speedup >= SHARDED_SPEEDUP_FLOOR),
    }
    return {
        "n_cells": n_cells,
        "n_requests_per_cell": per_cell,
        "epoch_seconds": epoch_seconds,
        "cores": cores,
        "events_digest": sharded_out["merged"]["events_digest"],
        "merged_latency": sharded_out["merged"]["latency"],
        "single": single,
        "sharded": sharded,
        "speedup": speedup,
        "gate": gate,
    }


def scale_report(quick: bool = False, seed: int = 0,
                 n_requests: Optional[int] = None) -> dict:
    """The ``scale`` section of ``BENCH_<date>.json``.

    Runs the streaming engine and the legacy engine on the same
    scenario at a comparison size (both engines, so the speedup is
    apples-to-apples), then — unless ``quick`` — the streaming engine
    alone at the million-request headline size (the legacy engine at
    that size is exactly the slow, memory-unbounded case this PR
    removes).
    """
    compare_n = n_requests or (2_500 if quick else 25_000)
    streaming = trace_serving_scale("streaming", compare_n, seed=seed)
    legacy = trace_serving_scale("legacy", compare_n, seed=seed)
    report = {
        "scenario": {
            "gpu": "A100_80GB",
            "topology": f"{N_INSTANCES}x 1g.10gb MIG, "
                        f"{SERVERS_PER_INSTANCE} MPS servers each",
            "model": "llama2-7b int8",
            "max_batch_size": MAX_BATCH_SIZE,
            "n_tokens": N_TOKENS,
            "rate_rps": DEFAULT_RATE_RPS,
        },
        "compare_n_requests": compare_n,
        "streaming": streaming,
        "legacy": legacy,
        "speedup": (streaming["events_per_sec"] / legacy["events_per_sec"]
                    if legacy["events_per_sec"] > 0 else 0.0),
    }
    report["sharded"] = sharded_scale_benchmark(quick=quick, seed=seed)
    if not quick:
        report["streaming_1m"] = trace_serving_scale(
            "streaming", 1_000_000, seed=seed)
    return report
