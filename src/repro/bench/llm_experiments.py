"""LLaMa-2 experiments: Fig. 2 (SM sweep) and Figs. 4/5 (multiplexing).

These run the full stack: a compute node with a simulated A100, the
enhanced HighThroughputExecutor binding workers to partitions through env
vars, and LLaMa-2 serving functions generating per-token decode kernels.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.sim.core import Environment
from repro.sim.resources import Store
from repro.faas import (
    ColdStartModel,
    ComputeNode,
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    StaticProvider,
    gpu_app,
)
from repro.gpu.specs import A100_40GB, A100_80GB, GPUSpec, get_spec
from repro.partition import EqualSharePolicy, GpuPartitionManager
from repro.runner import SweepRunner
from repro.workloads.llm import (
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA_MODELS,
    InferenceRuntime,
    LlamaInference,
    LlamaSpec,
)

__all__ = [
    "MultiplexResult",
    "SmSweepPoint",
    "fig2_sm_sweep",
    "fig4_fig5_sweep",
    "run_llm_multiplexing",
    "MODES",
]

#: The three §5.2 sharing configurations.
MODES = ("timeshare", "mps", "mig")

#: Evaluation uses fp16 7B so four instances fit in 80 GB (§5.2).
FIG4_RUNTIME = InferenceRuntime(dtype_bytes=2)
#: Fig. 2 runs fp32 ("32 bit floating point parameters").
FIG2_RUNTIME = InferenceRuntime(dtype_bytes=4)


@dataclass
class MultiplexResult:
    """One cell of Figs. 4/5: a (mode, process-count) measurement."""

    mode: str
    n_processes: int
    n_completions: int
    #: Wall time from all models warm until the last completion (Fig. 4).
    total_seconds: float
    #: Per-completion latencies across all processes (Fig. 5 averages them).
    latencies: list[float] = field(repr=False)

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies))

    @property
    def throughput(self) -> float:
        """Completions per second over the measured window."""
        return self.n_completions / self.total_seconds


def _split_evenly(total: int, k: int) -> list[int]:
    """'Work was divided equally across number of processes' (Fig. 4)."""
    base, extra = divmod(total, k)
    return [base + (1 if i < extra else 0) for i in range(k)]


def run_llm_multiplexing(
    mode: str,
    n_processes: int,
    n_completions: int = 100,
    n_tokens: int = 20,
    model: LlamaSpec = LLAMA2_7B,
    runtime: InferenceRuntime = FIG4_RUNTIME,
    spec: GPUSpec = A100_80GB,
) -> MultiplexResult:
    """Run the §5.2 experiment for one (mode, process count) cell.

    ``n_processes`` serving functions share one GPU under ``mode``; the
    ``n_completions`` text completions are divided equally among them.
    Measurement starts once every model is loaded (the paper's task
    completion time excludes the initial load, which §6 treats
    separately).
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if n_processes <= 0 or n_completions <= 0 or n_tokens <= 0:
        raise ValueError("counts must be positive")

    env = Environment()
    node = ComputeNode(env, cores=24, gpu_specs=[spec])
    manager = GpuPartitionManager(node)
    llm = LlamaInference(model, runtime)
    if mode == "timeshare":
        htex_config = manager.timeshare_config(n_processes)
    elif mode == "mps":
        htex_config = manager.apply_mps_policy(EqualSharePolicy(n_processes))
    else:  # mig
        policy = EqualSharePolicy(n_processes,
                                  min_memory_bytes=llm.memory_per_gpu)
        proc = env.process(manager.apply_mig_policy(policy))
        htex_config = env.run(until=proc)

    executor = HighThroughputExecutor(
        label="gpu",
        available_accelerators=htex_config.available_accelerators,
        gpu_percentage=htex_config.gpu_percentage,
        provider=StaticProvider([node]),
        cold_start=ColdStartModel(),
    )
    dfk = DataFlowKernel(Config(executors=[executor]), env=env)

    ready = Store(env, name="ready")
    go = env.event(name="go")

    @gpu_app(dfk=dfk)
    def serve(ctx, completions: int):
        yield from ctx.load_model(model.name, llm.memory_per_gpu,
                                  llm.load_seconds)
        yield ready.put(ctx.worker.name)
        yield go
        latencies = []
        for _ in range(completions):
            t0 = ctx.now
            for _token in range(n_tokens):
                yield ctx.launch(llm.decode_kernel())
                yield ctx.compute(llm.host_seconds_per_token)
            latencies.append(ctx.now - t0)
        return latencies

    futures = [serve(c) for c in _split_evenly(n_completions, n_processes)]

    measured = {}

    def driver(env):
        for _ in range(n_processes):
            yield ready.get()
        measured["t0"] = env.now
        go.succeed()

    env.process(driver(env))
    results = dfk.wait(futures)
    total = env.now - measured["t0"]
    latencies = [lat for worker_latencies in results
                 for lat in worker_latencies]
    return MultiplexResult(
        mode=mode,
        n_processes=n_processes,
        n_completions=n_completions,
        total_seconds=total,
        latencies=latencies,
    )


def _fig45_cell_task(config: dict) -> MultiplexResult:
    """One Fig. 4/5 grid cell, from a picklable/JSON-able config."""
    return run_llm_multiplexing(
        config["mode"], config["k"],
        n_completions=config["n_completions"],
        n_tokens=config["n_tokens"],
        spec=get_spec(config["spec"]),
    )


def fig4_fig5_sweep(
    process_counts: Sequence[int] = (1, 2, 3, 4),
    modes: Sequence[str] = MODES,
    n_completions: int = 100,
    n_tokens: int = 20,
    runner: Optional[SweepRunner] = None,
) -> dict[tuple[str, int], MultiplexResult]:
    """The full Figs. 4/5 grid.  ``(mode, 1)`` cells coincide by design.

    Each ``(mode, k)`` cell is an independent simulation; with a
    ``runner`` the grid fans out over worker processes and hits the
    result cache — without one, it runs serially in-process.
    """
    configs = [
        {"mode": mode, "k": k, "n_completions": n_completions,
         "n_tokens": n_tokens, "spec": A100_80GB.name}
        for mode in modes for k in process_counts
    ]
    if runner is None:
        runner = SweepRunner(jobs=1)
    cells = runner.map(_fig45_cell_task, configs, task="fig45_cell")
    return {(c["mode"], c["k"]): r for c, r in zip(configs, cells)}


# ---------------------------------------------------------------- Fig. 2

@dataclass(frozen=True)
class SmSweepPoint:
    """One Fig. 2 sample: completion latency at an SM allocation."""

    model: str
    sms: int
    mps_percentage: int
    completion_seconds: float


def _fig2_point_task(config: dict) -> SmSweepPoint:
    """One Fig. 2 sample, from a picklable/JSON-able config."""
    return _measure_completion(
        LLAMA_MODELS[config["model"]], config["n_gpus"], config["pct"],
        config["n_tokens"], get_spec(config["spec"]),
        InferenceRuntime(**config["runtime"]),
    )


def fig2_sm_sweep(
    percentages: Sequence[int] = tuple(range(5, 101, 5)),
    n_tokens: int = 20,
    spec: GPUSpec = A100_40GB,
    runtime: InferenceRuntime = FIG2_RUNTIME,
    runner: Optional[SweepRunner] = None,
) -> dict[str, list[SmSweepPoint]]:
    """Fig. 2: LLaMa-2 inference time vs SM share via MPS percentages.

    7B runs on one A100; 13B spans two A100s tensor-parallel ("for llama2
    13 billion parameters 2 A100 GPUs were used").  Each point is one
    measured completion on the live simulator (not the closed form).
    Every (model, percentage) point is independent, so a ``runner`` fans
    the sweep out and caches each point by content.
    """
    for pct in percentages:
        if not 0 < pct <= 100:
            raise ValueError(f"percentage {pct} outside (0, 100]")
    rt = asdict(runtime)
    configs = [
        {"model": name, "n_gpus": n_gpus, "pct": pct, "n_tokens": n_tokens,
         "spec": spec.name, "runtime": rt}
        for name, n_gpus in (("llama2-7b", 1), ("llama2-13b", 2))
        for pct in percentages
    ]
    if runner is None:
        runner = SweepRunner(jobs=1)
    points = runner.map(_fig2_point_task, configs, task="fig2_point")
    out: dict[str, list[SmSweepPoint]] = {"llama2-7b": [], "llama2-13b": []}
    for config, point in zip(configs, points):
        out[config["model"]].append(point)
    return out


def _measure_completion(model: LlamaSpec, n_gpus: int, pct: int,
                        n_tokens: int, spec: GPUSpec,
                        runtime: InferenceRuntime) -> SmSweepPoint:
    env = Environment()
    node = ComputeNode(env, cores=24, gpu_specs=[spec] * n_gpus)
    node.start_mps()
    llm = LlamaInference(model, runtime, n_gpus=n_gpus)
    clients = [
        node.mps_daemons[i].client(f"shard{i}", active_thread_percentage=pct)
        for i in range(n_gpus)
    ]
    for client in clients:
        client.alloc(llm.memory_per_gpu)

    def completion(env):
        t0 = env.now
        for _token in range(n_tokens):
            # Tensor-parallel shards execute their slice concurrently;
            # the token finishes when the slowest shard does.
            kernel = llm.decode_kernel()
            yield env.all_of([c.launch(kernel.scaled(1.0)) for c in clients])
            yield env.timeout(llm.host_seconds_per_token)
        return env.now - t0

    seconds = env.run(until=env.process(completion(env)))
    sms = clients[0].sm_cap
    return SmSweepPoint(model=model.name, sms=sms, mps_percentage=pct,
                        completion_seconds=seconds)
