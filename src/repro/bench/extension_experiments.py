"""Extension studies promoted into the bench library.

The ``benchmarks/test_extension_*`` modules originally built their
simulations inline; the bursty-trace serving study lives here so the CLI
and the sweep runner can execute it: its three deployments are
independent simulations, ideal for process fan-out and result caching.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu.device import SimulatedGPU
from repro.gpu.mps import MpsControlDaemon
from repro.gpu.specs import A100_80GB, get_spec
from repro.runner import SweepRunner
from repro.sim.core import Environment
from repro.workloads.llm import (
    LLAMA2_7B,
    LLAMA_MODELS,
    InferenceRuntime,
    LlamaInference,
)
from repro.workloads.serving import InferenceServer
from repro.workloads.traces import bursty_trace

__all__ = ["trace_serving_study", "TRACE_DEPLOYMENTS"]

#: The three deployments compared by the study (name -> replicas, batch).
TRACE_DEPLOYMENTS = (
    ("1 replica, batch 1", 1, 1),
    ("4 MPS partitions, batch 1", 4, 1),
    ("1 replica, dynamic batch <=8", 1, 8),
)


def _trace_deployment_task(config: dict) -> dict:
    """Replay the bursty trace against one deployment (picklable config)."""
    trace = bursty_trace(**config["trace"])
    horizon = config["horizon"]
    n_tokens = config["n_tokens"]
    env = Environment()
    gpu = SimulatedGPU(env, get_spec(config["spec"]))
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    llm = LlamaInference(LLAMA_MODELS[config["model"]],
                         InferenceRuntime(dtype_bytes=config["dtype_bytes"]))
    n_replicas = config["replicas"]
    pct = max(1, round(100 / n_replicas))
    servers = []
    for i in range(n_replicas):
        client = daemon.client(f"replica{i}", active_thread_percentage=pct)
        client.alloc(llm.memory_per_gpu)
        servers.append(InferenceServer(env, client, llm,
                                       max_batch_size=config["max_batch"],
                                       batch_timeout=0.05))
    requests = []

    def feeder(env):
        last = 0.0
        for arrival in trace:
            yield env.timeout(arrival - last)
            last = arrival
            # Shortest-queue replica gets the request.
            target = min(servers, key=lambda s: len(s._queue.items))
            requests.append(target.submit(n_tokens))

    env.process(feeder(env))
    env.run(until=horizon)
    env.run(until=env.all_of([r.done for r in requests]))
    latencies = np.array([r.latency for r in requests])
    return {
        "completed": len(requests),
        "p50": float(np.percentile(latencies, 50)),
        "p95": float(np.percentile(latencies, 95)),
        "max": float(latencies.max()),
        "drain": env.now - horizon,
        "mean_batch": float(np.mean([s.mean_batch_size for s in servers])),
    }


def trace_serving_study(
    horizon: float = 600.0,
    n_tokens: int = 20,
    trace_seed: int = 11,
    runner: Optional[SweepRunner] = None,
) -> dict[str, dict]:
    """Bursty-trace serving: whole GPU vs MPS partitions vs batching.

    Replays one Markov-modulated bursty arrival trace (quiet ~0.3 rps,
    bursts ~6 rps) of LLaMa-2 7B completions against the three
    deployments in :data:`TRACE_DEPLOYMENTS` on one A100-80GB.
    """
    trace_params = {"base_rate_rps": 0.3, "burst_rate_rps": 6.0,
                    "horizon": horizon, "mean_quiet": 120.0,
                    "mean_burst": 15.0, "seed": trace_seed}
    configs = [
        {"deployment": name, "replicas": replicas, "max_batch": max_batch,
         "trace": trace_params, "horizon": horizon, "n_tokens": n_tokens,
         "model": LLAMA2_7B.name, "dtype_bytes": 2, "spec": A100_80GB.name}
        for name, replicas, max_batch in TRACE_DEPLOYMENTS
    ]
    if runner is None:
        runner = SweepRunner(jobs=1)
    results = runner.map(_trace_deployment_task, configs,
                         task="trace_deployment")
    return {c["deployment"]: r for c, r in zip(configs, results)}
