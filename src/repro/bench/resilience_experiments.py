"""Resilience benchmark (the ``resilience`` section of ``repro bench``).

Two experiments over the canonical 112-replica fleet of the scale
benchmark (7 partitions x 16 serving functions on an A100-80GB):

- **goodput under chaos** — the full fault-tolerant serving plane
  (retries, hedging, breakers, failover, admission control) serves an
  open-loop Poisson load while a :class:`~repro.faas.chaos.FaultPlan`
  mixing every fault class plays out.  The gate: *zero lost requests*
  (every offered request terminates exactly once) and goodput — in-SLO
  completions per second — above a floor relative to the offered rate.
- **blast radius** — the MIG-backed fleet and a flat-MPS fleet with
  identical per-replica SM shares replay the *identical* ECC-only
  plan.  On MIG an uncorrectable error is confined to one ``1g.10gb``
  instance (~1/7 of resident kernels); under MPS every resident client
  shares the dying context.  The measured mean kill fraction per fault
  quantifies the isolation the paper's hardware partitioning buys.

Everything is seeded end to end, so a regression in any number here is
a real behaviour change, not noise.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["DEFAULT_GOODPUT_FLOOR_FRACTION", "blast_radius_experiment",
           "build_resilient_fleet", "canonical_fault_plan",
           "resilience_report", "resilient_fleet_report",
           "run_resilient_fleet"]

#: The fleet topology mirrors :mod:`repro.bench.scale_experiments`.
N_PARTITIONS = 7
SERVERS_PER_PARTITION = 16
N_TOKENS = 16

#: Offered load (requests/second).  Fleet capacity at batch size 1 is
#: ~4.07 rps; 3.4 leaves headroom for retry/hedge amplification while
#: keeping utilisation interesting (~84%).
DEFAULT_RATE_RPS = 3.4

#: Per-request latency SLO for the bench scenario.  Generous relative
#: to the ~20s fault-free mean at this utilisation, so SLO misses under
#: chaos measure fault impact rather than baseline queueing.
DEFAULT_DEADLINE_SECONDS = 60.0

#: The CI gate: goodput must stay above this fraction of the offered
#: rate under the canonical fault schedule.
DEFAULT_GOODPUT_FLOOR_FRACTION = 0.7


def canonical_fault_plan(horizon: float, seed: int = 0):
    """The bench's standard fault mix over ``horizon`` seconds.

    One independent Poisson process per fault class (distinct derived
    seeds), merged: roughly one ECC error and one replica crash per
    ~80s, plus stragglers, transient launch failures, and
    reconfiguration stalls.  Deterministic in ``(horizon, seed)``.
    """
    from repro.faas.chaos import FaultPlan

    return FaultPlan.exponential(
        "ecc", mtbf_seconds=80.0, horizon=horizon, seed=seed * 8 + 1,
    ).merge(
        FaultPlan.exponential(
            "replica_crash", mtbf_seconds=80.0, horizon=horizon,
            seed=seed * 8 + 2, duration=5.0),
        FaultPlan.exponential(
            "straggler_replica", mtbf_seconds=60.0, horizon=horizon,
            seed=seed * 8 + 3, duration=10.0, factor=4.0),
        FaultPlan.exponential(
            "launch_failure", mtbf_seconds=40.0, horizon=horizon,
            seed=seed * 8 + 4),
        FaultPlan.exponential(
            "reconfig_stall", mtbf_seconds=120.0, horizon=horizon,
            seed=seed * 8 + 5, duration=2.0),
    )


def build_resilient_fleet(env, mode: str, n_requests: int,
                          rate_rps: float = DEFAULT_RATE_RPS,
                          deadline_seconds: float = DEFAULT_DEADLINE_SECONDS,
                          seed: int = 0, plan=None,
                          n_partitions: int = N_PARTITIONS,
                          servers_per_partition: int = SERVERS_PER_PARTITION,
                          n_tokens: int = N_TOKENS) -> tuple:
    """Construct one chaos-serving scenario inside ``env``.

    Returns ``(fleet, chaos, client)``.  Shared by the single-process
    runner and the sharded simulation's fleet cells, so both build the
    *identical* scenario — the differential tests' bit-identity rests
    on this single construction path.
    """
    import numpy as np

    from repro.faas.chaos import ChaosController
    from repro.workloads.fleet import ServingFleet
    from repro.workloads.resilience import SLOPolicy
    from repro.workloads.serving import OpenLoopClient

    policy = SLOPolicy(deadline_seconds=deadline_seconds)
    fleet = ServingFleet(env, mode=mode, n_partitions=n_partitions,
                         servers_per_partition=servers_per_partition,
                         policy=policy, seed=seed)
    chaos = None
    if plan is not None:
        chaos = ChaosController(env, fleet, plan)
    client = OpenLoopClient(env, fleet.router, rate_rps=rate_rps,
                            n_requests=n_requests, n_tokens=n_tokens,
                            rng=np.random.default_rng(seed),
                            streaming=True)
    return fleet, chaos, client


def resilient_fleet_report(env, fleet, chaos, mode: str, n_requests: int,
                           rate_rps: float,
                           deadline_seconds: float) -> dict:
    """Assemble the report dict for a finished chaos-serving run.

    Every field is deterministic in (seed, config) — this is the
    payload the determinism tests compare verbatim across twin runs.
    """
    report = fleet.report(env.now)
    report["mode"] = mode
    report["n_requests"] = n_requests
    report["rate_rps"] = rate_rps
    report["deadline_seconds"] = deadline_seconds
    report["sim_seconds"] = env.now
    report["events"] = env.events_processed
    report["faults_applied"] = 0 if chaos is None else len(chaos.applied)
    report["ecc_log"] = list(fleet.ecc_log)
    return report


def run_resilient_fleet(mode: str, n_requests: int,
                        rate_rps: float = DEFAULT_RATE_RPS,
                        deadline_seconds: float = DEFAULT_DEADLINE_SECONDS,
                        seed: int = 0, plan=None,
                        n_partitions: int = N_PARTITIONS,
                        servers_per_partition: int = SERVERS_PER_PARTITION,
                        n_tokens: int = N_TOKENS) -> dict:
    """One chaos-serving run; returns the resilience report dict."""
    from repro.sim.core import Environment

    env = Environment()
    fleet, chaos, client = build_resilient_fleet(
        env, mode, n_requests, rate_rps=rate_rps,
        deadline_seconds=deadline_seconds, seed=seed, plan=plan,
        n_partitions=n_partitions,
        servers_per_partition=servers_per_partition, n_tokens=n_tokens)
    env.run(until=client.done)
    return resilient_fleet_report(env, fleet, chaos, mode, n_requests,
                                  rate_rps, deadline_seconds)


def blast_radius_experiment(n_requests: int = 600,
                            rate_rps: float = 3.0,
                            seed: int = 0,
                            ecc_mtbf_seconds: float = 30.0) -> dict:
    """Replay one ECC-only plan against MIG and flat-MPS fleets.

    The identical plan (same times, same raw targets) hits both
    topologies; per fault the fleet logs ``(domain, killed, resident)``.
    The MIG mean kill fraction should sit near ``1/n_partitions``; the
    MPS one near 1.0 — their ratio is the isolation factor.
    """
    from repro.faas.chaos import FaultPlan

    horizon = n_requests / rate_rps
    plan = FaultPlan.exponential("ecc", mtbf_seconds=ecc_mtbf_seconds,
                                 horizon=horizon, seed=seed * 8 + 7)

    def summarise(report: dict) -> dict:
        fractions = [killed / resident
                     for _dom, killed, resident in report["ecc_log"]
                     if resident > 0]
        return {
            "faults": len(report["ecc_log"]),
            "faults_with_residents": len(fractions),
            "kernels_killed": sum(k for _d, k, _r in report["ecc_log"]),
            "mean_kill_fraction": (sum(fractions) / len(fractions)
                                   if fractions else 0.0),
            "completed": report["completed"],
            "lost": report["lost"],
        }

    mig = summarise(run_resilient_fleet("mig-mps", n_requests,
                                        rate_rps=rate_rps, seed=seed,
                                        plan=plan))
    mps = summarise(run_resilient_fleet("mps", n_requests,
                                        rate_rps=rate_rps, seed=seed,
                                        plan=plan))
    ratio = (mps["mean_kill_fraction"] / mig["mean_kill_fraction"]
             if mig["mean_kill_fraction"] > 0 else 0.0)
    return {"plan_events": len(plan), "mig": mig, "mps": mps,
            "isolation_ratio": ratio}


def resilience_report(quick: bool = False, seed: int = 0,
                      n_requests: Optional[int] = None) -> dict:
    """The ``resilience`` section of ``BENCH_<date>.json``."""
    n = n_requests or (800 if quick else 4_000)
    horizon = n / DEFAULT_RATE_RPS
    plan = canonical_fault_plan(horizon, seed=seed)
    fleet = run_resilient_fleet("mig-mps", n, plan=plan, seed=seed)
    fleet.pop("ecc_log")  # raw per-fault tuples; blast radius covers it
    floor = DEFAULT_GOODPUT_FLOOR_FRACTION * DEFAULT_RATE_RPS
    gate = {
        "goodput_floor_rps": floor,
        "goodput_rps": fleet["goodput_rps"],
        "lost": fleet["lost"],
        "pass": fleet["lost"] == 0 and fleet["goodput_rps"] >= floor,
    }
    blast = blast_radius_experiment(
        n_requests=400 if quick else 1_200, seed=seed)
    return {
        "scenario": {
            "gpu": "A100_80GB",
            "topology": f"{N_PARTITIONS}x 1g.10gb MIG, "
                        f"{SERVERS_PER_PARTITION} MPS servers each",
            "model": "llama2-7b int8",
            "rate_rps": DEFAULT_RATE_RPS,
            "deadline_seconds": DEFAULT_DEADLINE_SECONDS,
            "n_requests": n,
        },
        "plan_events": len(plan),
        "fleet": fleet,
        "gate": gate,
        "blast_radius": blast,
    }
