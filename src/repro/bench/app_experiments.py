"""Application-study experiments: Fig. 1 (CNN FLOP variance) and
Fig. 3 (molecular-design timeline)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    LocalProvider,
)
from repro.gpu.specs import A100_40GB, GPUSpec
from repro.telemetry.timeline import Timeline
from repro.workloads.cnn import CNN_ZOO, CnnModel
from repro.workloads.moldesign import CampaignConfig, MolecularDesignCampaign

__all__ = ["fig1_layer_flops", "fig3_moldesign", "Fig3Result"]

#: The CNNs Fig. 1 plots (plus extras from the zoo on request).
FIG1_MODELS = ("alexnet", "vgg16", "resnet50", "resnet101")


def fig1_layer_flops(
    model_names: Sequence[str] = FIG1_MODELS,
    batch_sizes: Sequence[int] = (1,),
) -> dict[tuple[str, int], list[tuple[str, float]]]:
    """Fig. 1: per-conv-layer FLOPs for each model and batch size.

    Returns ``{(model, batch): [(layer_name, flops), ...]}`` in execution
    order — the series Fig. 1 plots.
    """
    out: dict[tuple[str, int], list[tuple[str, float]]] = {}
    for name in model_names:
        model: CnnModel = CNN_ZOO[name]
        for batch in batch_sizes:
            out[(name, batch)] = model.layer_flops(batch)
    return out


@dataclass
class Fig3Result:
    """Fig. 3 reproduction: the campaign's phase timeline and idle stats."""

    timeline: Timeline = field(repr=False)
    makespan: float = 0.0
    simulation_busy: float = 0.0
    training_busy: float = 0.0
    inference_busy: float = 0.0
    gpu_idle_fraction: float = 0.0
    gpu_idle_gaps: int = 0
    best_ip: float = 0.0


def fig3_moldesign(
    config: CampaignConfig | None = None,
    cores: int = 24,
    gpu_spec: GPUSpec = A100_40GB,
    n_gpu_workers: int = 1,
    gpu_percentage: int | None = None,
) -> Fig3Result:
    """Fig. 3: run the campaign and extract the phase timeline.

    With ``n_gpu_workers > 1`` (plus an MPS ``gpu_percentage``) the
    train/infer phases can overlap other work — the pipelining §3.4 says
    "will yield higher accelerator utilization".
    """
    if config is None:
        config = CampaignConfig()
    cpu = HighThroughputExecutor(
        label="cpu", max_workers=max(1, cores - n_gpu_workers),
        cold_start=ColdStartModel())
    if gpu_percentage is not None:
        accelerators = ["0"] * n_gpu_workers
        percentages = [gpu_percentage] * n_gpu_workers
    else:
        accelerators = ["0"] * n_gpu_workers
        percentages = None
    gpu = HighThroughputExecutor(
        label="gpu",
        available_accelerators=accelerators,
        gpu_percentage=percentages,
        provider=LocalProvider(cores=cores, gpu_specs=[gpu_spec]),
        cold_start=ColdStartModel(),
    )
    dfk = DataFlowKernel(Config(executors=[cpu, gpu]))
    campaign = MolecularDesignCampaign(dfk, config)
    result = campaign.run_to_completion()
    timeline = result.timeline
    gpu_categories = [MolecularDesignCampaign.TRAINING,
                      MolecularDesignCampaign.INFERENCE]
    return Fig3Result(
        timeline=timeline,
        makespan=timeline.makespan,
        simulation_busy=timeline.busy_time(MolecularDesignCampaign.SIMULATION),
        training_busy=timeline.busy_time(MolecularDesignCampaign.TRAINING),
        inference_busy=timeline.busy_time(MolecularDesignCampaign.INFERENCE),
        gpu_idle_fraction=timeline.idle_fraction(gpu_categories),
        gpu_idle_gaps=len(timeline.idle_gaps(gpu_categories)),
        best_ip=result.best_ip,
    )
