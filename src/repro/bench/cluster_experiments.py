"""Cluster placement benchmark (the ``cluster`` section of ``repro
bench``).

ROADMAP item 1's contest, scored: 50 functions with seeded-random SLOs,
latency curves, weight footprints, and rate forecasts must be packed
onto a 500-GPU heterogeneous fleet (A100-80GB / A100-40GB / H100 /
V100) by both packers from :mod:`repro.cluster.packing`.  The gate
demands:

- the segment-repacking optimiser uses *strictly fewer* GPUs than the
  greedy first-fit-decreasing baseline;
- at an in-SLO fraction within ``IN_SLO_TOLERANCE`` of greedy's (both
  packers share the oracle's admission rule, so the engineered
  infeasible functions — an SLO below any device's serial floor, a
  weight footprint no slice holds — are rejected identically and the
  fractions normally tie exactly);
- twin runs produce byte-identical canonical placement payloads
  (packing is pure deterministic arithmetic — no wall clock, no
  unseeded randomness);
- every per-GPU MPS cap set emitted via the repaired
  :func:`~repro.partition.autoscaler.scaled_percentages` keeps its
  replica-weighted sum <= 100 (the satellite bugfix, enforced at
  cluster scale where the old per-function ``ceil`` overshoot
  compounded worst);
- both placements pass the model's over-commitment ``validate()``.

A ``feedback`` subsection drives :class:`~repro.cluster.feedback.
ClusterFeedback` with synthetic offered-counter telemetry (a demand
shift on two functions) and checks the drift trigger replans
deterministically.
"""

from __future__ import annotations

import hashlib
import json
import time

import numpy as np

from repro.gpu.specs import A100_40GB, A100_80GB, GB, H100_80GB, V100_32GB
from repro.cluster.feedback import ClusterFeedback
from repro.cluster.model import FunctionDemand, LatencyCurve
from repro.cluster.oracle import SizingOracle
from repro.cluster.packing import greedy_pack, optimize_pack
from repro.sim.rng import substream_seed

__all__ = ["cluster_report", "contest_demands", "contest_inventory",
           "run_contest"]

#: The heterogeneous contest fleet: 500 devices across four models.
CONTEST_INVENTORY = (
    (A100_80GB, 200),
    (A100_40GB, 150),
    (H100_80GB, 100),
    (V100_32GB, 50),
)

N_FUNCTIONS = 50

#: The optimiser must match greedy's in-SLO fraction this closely.
IN_SLO_TOLERANCE = 0.01


def contest_inventory() -> list[tuple]:
    return [(spec, count) for spec, count in CONTEST_INVENTORY]


def contest_demands(n_functions: int = N_FUNCTIONS,
                    seed: int = 0) -> list[FunctionDemand]:
    """``n_functions`` seeded demands spanning the sizing space.

    Parameters draw from one named substream per contest, so demand i
    depends only on ``(seed, i)`` — growing the contest never perturbs
    existing functions.  Two engineered-infeasible demands exercise the
    oracle's typed rejections: one SLO below every device's serial
    floor, one weight footprint larger than any slice.
    """
    demands: list[FunctionDemand] = []
    for i in range(n_functions):
        rng = np.random.default_rng(
            substream_seed(seed, "cluster-demand", i))
        work = float(rng.uniform(0.5, 10.0))
        serial = float(rng.uniform(0.01, 0.08))
        saturation = int(rng.integers(8, 97))
        # SLO between "needs a fat slice" (1.15x the saturated latency)
        # and "a sliver will do" (4x), always achievable on paper.
        floor_latency = serial + work / saturation
        slo = floor_latency * float(rng.uniform(1.15, 4.0))
        # Heavy-tailed forecasts (median ~20 rps, a few hundreds-of-rps
        # whales) so the 50 functions genuinely contend for the fleet
        # instead of rattling around in it.
        rate = float(rng.lognormal(mean=3.0, sigma=1.1))
        model_bytes = float(rng.uniform(0.5, 30.0)) * GB
        demands.append(FunctionDemand(
            name=f"fn{i:03d}",
            slo_seconds=slo,
            rate_rps=rate,
            curve=LatencyCurve(work=work, serial=serial,
                               saturation=saturation),
            model_bytes=model_bytes,
        ))
    if n_functions >= 2:
        # fn_slo: serial floor 0.2 s against a 0.1 s SLO — no SM count
        # on any device helps; the feasible flag must say so.
        demands[-2] = FunctionDemand(
            name=demands[-2].name, slo_seconds=0.1, rate_rps=2.0,
            curve=LatencyCurve(work=1.0, serial=0.2, saturation=50),
            model_bytes=4.0 * GB)
        # fn_mem: 200 GB of weights fit no slice in the catalog.
        demands[-1] = FunctionDemand(
            name=demands[-1].name, slo_seconds=5.0, rate_rps=1.0,
            curve=LatencyCurve(work=2.0, serial=0.05, saturation=60),
            model_bytes=200.0 * GB)
    return demands


def _digest(placement) -> str:
    payload = json.dumps(placement.payload(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def run_contest(n_functions: int = N_FUNCTIONS, seed: int = 0,
                inventory=None) -> dict:
    """Pack one contest with both packers and score them."""
    inventory = contest_inventory() if inventory is None else inventory
    demands = contest_demands(n_functions, seed)
    oracle = SizingOracle([spec for spec, _ in inventory])

    t0 = time.perf_counter()
    greedy = greedy_pack(demands, inventory, oracle)
    t1 = time.perf_counter()
    optimized = optimize_pack(demands, inventory, oracle)
    t2 = time.perf_counter()
    greedy.validate()
    optimized.validate()

    caps = {}
    worst_cap = 0
    for label, placement in (("greedy", greedy), ("optimized", optimized)):
        per_gpu = placement.mps_caps()
        worst = max((v["weighted_sum"] for v in per_gpu.values()),
                    default=0)
        caps[label] = {"shared_gpus": len(per_gpu),
                       "max_weighted_sum": worst}
        worst_cap = max(worst_cap, worst)

    return {
        "inventory": {spec.name: count for spec, count in inventory},
        "n_gpus": sum(count for _, count in inventory),
        "n_functions": n_functions,
        "seed": seed,
        "greedy": {**greedy.score(), "digest": _digest(greedy),
                   "wall_seconds": t1 - t0},
        "optimized": {**optimized.score(), "digest": _digest(optimized),
                      "wall_seconds": t2 - t1},
        "mps_caps": caps,
        "max_weighted_cap_sum": worst_cap,
    }


def _feedback_report(seed: int = 0) -> dict:
    """Exercise the fleet->cluster loop with synthetic telemetry."""
    inventory = [(A100_80GB, 40), (V100_32GB, 10)]
    demands = contest_demands(8, seed)[:6]  # feasible subset
    loop = ClusterFeedback(demands, inventory, drift_threshold=0.25)
    before = loop.placement.gpus_used
    # Two windows of offered counters: the first primes the sensor, the
    # second doubles two functions' arrival rates.
    t_prime, t_obs = 60.0, 120.0
    loop.observe_counters({
        d.name: (d.rate_rps * t_prime, t_prime) for d in demands})
    boosted = {d.name: (2.0 if i < 2 else 1.0)
               for i, d in enumerate(demands)}
    loop.observe_counters({
        d.name: (d.rate_rps * t_prime
                 + boosted[d.name] * d.rate_rps * (t_obs - t_prime),
                 t_obs)
        for d in demands})
    drift_before = loop.drift()
    diff = loop.replan(now=t_obs)  # the doubled rates must trip the gate
    loop.placement.validate()
    settled = loop.replan(now=t_obs + 60.0)  # planned-for rates: no-op
    return {
        "gpus_before": before,
        "gpus_after": loop.placement.gpus_used,
        "replans": loop.replans,
        "drift_before": drift_before,
        "drift_triggered": diff is not None,
        "settled_after_replan": settled is None,
        "diff": None if diff is None else
        {k: v for k, v in diff.items() if k != "time"},
        "summary": loop.summary(),
    }


def cluster_report(quick: bool = False, seed: int = 0) -> dict:
    """The ``cluster`` section of ``BENCH_<date>.json``."""
    contest = run_contest(N_FUNCTIONS, seed)
    twin = run_contest(N_FUNCTIONS, seed)
    twin_identical = (
        contest["greedy"]["digest"] == twin["greedy"]["digest"]
        and contest["optimized"]["digest"] == twin["optimized"]["digest"])

    greedy, optimized = contest["greedy"], contest["optimized"]
    in_slo_delta = abs(greedy["in_slo_fraction"]
                       - optimized["in_slo_fraction"])
    gate = {
        "greedy_gpus": greedy["gpus_used"],
        "optimized_gpus": optimized["gpus_used"],
        "fewer_gpus": optimized["gpus_used"] < greedy["gpus_used"],
        "in_slo_delta": in_slo_delta,
        "in_slo_within_tolerance": in_slo_delta <= IN_SLO_TOLERANCE,
        "rejections_match": greedy["rejected"] == optimized["rejected"],
        "max_weighted_cap_sum": contest["max_weighted_cap_sum"],
        "caps_bounded": contest["max_weighted_cap_sum"] <= 100,
        "twin_identical": twin_identical,
    }
    gate["pass"] = (gate["fewer_gpus"]
                    and gate["in_slo_within_tolerance"]
                    and gate["rejections_match"]
                    and gate["caps_bounded"]
                    and gate["twin_identical"])
    return {
        "contest": contest,
        "feedback": _feedback_report(seed),
        "gate": gate,
    }
