"""Benchmark harness: one experiment function per paper table/figure.

Each function runs the full stack (FaaS framework over the simulated
GPU) and returns structured results; the ``benchmarks/`` pytest modules
wrap them with pytest-benchmark and print the paper-style tables.

=====================  =============================================
Paper artifact         Harness entry point
=====================  =============================================
Fig. 1                 :func:`repro.bench.app_experiments.fig1_layer_flops`
Fig. 2                 :func:`repro.bench.llm_experiments.fig2_sm_sweep`
Fig. 3                 :func:`repro.bench.app_experiments.fig3_moldesign`
Fig. 4 / Fig. 5        :func:`repro.bench.llm_experiments.run_llm_multiplexing`
Table 1                :func:`repro.bench.overhead_experiments.table1_comparison`
§6 overheads           :func:`repro.bench.overhead_experiments.discussion_overheads`
§7 ablations           :func:`repro.bench.overhead_experiments.weightcache_ablation`,
                       :func:`repro.bench.overhead_experiments.rightsizing_study`
=====================  =============================================
"""

from repro.bench.harness import format_table, save_results
from repro.bench.llm_experiments import (
    MultiplexResult,
    fig2_sm_sweep,
    fig4_fig5_sweep,
    run_llm_multiplexing,
)
from repro.bench.app_experiments import fig1_layer_flops, fig3_moldesign
from repro.bench.extension_experiments import trace_serving_study
from repro.bench.overhead_experiments import (
    discussion_overheads,
    rightsizing_study,
    table1_comparison,
    weightcache_ablation,
)
from repro.bench.perfjson import collect_bench, write_bench_json
from repro.bench.resilience_experiments import (
    blast_radius_experiment,
    canonical_fault_plan,
    resilience_report,
    run_resilient_fleet,
)
from repro.bench.autoscale_experiments import (
    autoscale_report,
    run_autoscale_fleet,
)
from repro.bench.cluster_experiments import cluster_report, run_contest

__all__ = [
    "MultiplexResult",
    "autoscale_report",
    "blast_radius_experiment",
    "canonical_fault_plan",
    "cluster_report",
    "collect_bench",
    "discussion_overheads",
    "fig1_layer_flops",
    "fig2_sm_sweep",
    "fig3_moldesign",
    "fig4_fig5_sweep",
    "format_table",
    "resilience_report",
    "rightsizing_study",
    "run_autoscale_fleet",
    "run_contest",
    "run_llm_multiplexing",
    "run_resilient_fleet",
    "save_results",
    "table1_comparison",
    "trace_serving_study",
    "weightcache_ablation",
    "write_bench_json",
]
