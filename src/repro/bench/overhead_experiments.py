"""Table 1, the §6 overhead discussion, and the §7 ablations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.core import Environment
from repro.faas import ColdStartModel, ComputeNode
from repro.gpu.device import SimulatedGPU
from repro.gpu.mig import MigManager
from repro.gpu.modes import MultiplexMode, mode_capabilities
from repro.gpu.mps import MpsControlDaemon
from repro.gpu.specs import A100_40GB, A100_80GB, GPUSpec, get_spec
from repro.gpu.vgpu import VgpuManager
from repro.runner import SweepRunner
from repro.partition import (
    ReconfigurationPlanner,
    RightSizer,
    StaticAnalyzer,
    WeightCache,
)
from repro.workloads.cnn import CNN_ZOO
from repro.workloads.llm import (
    LLAMA2_13B,
    LLAMA2_7B,
    InferenceRuntime,
    LlamaInference,
)

__all__ = [
    "Table1Row",
    "table1_comparison",
    "discussion_overheads",
    "weightcache_ablation",
    "rightsizing_study",
]

FP16 = InferenceRuntime(dtype_bytes=2)
FP32 = InferenceRuntime(dtype_bytes=4)


# ------------------------------------------------------------------ Table 1

@dataclass
class Table1Row:
    """One technique's measured + qualitative comparison entry."""

    mode: MultiplexMode
    measured_utilization: float
    measured_throughput: float
    description: str
    utilization_class: str
    amd_equivalent: str
    reconfiguration: str
    software_required: str
    drawbacks: str


def _reference_workload(env: Environment, clients, n_rounds: int = 50,
                        runtime: InferenceRuntime = FP16):
    """The Table 1 probe: each client decodes tokens with host gaps."""
    llm = LlamaInference(LLAMA2_7B, runtime)

    def stream(env, client):
        for _ in range(n_rounds):
            yield client.launch(llm.decode_kernel())
            yield env.timeout(llm.host_seconds_per_token)

    return [env.process(stream(env, c)) for c in clients]


def _table1_row_task(config: dict) -> Table1Row:
    """Measure one Table 1 technique, from a picklable/JSON-able config."""
    mode = MultiplexMode(config["mode"])
    spec = get_spec(config["spec"])
    n_clients = config["n_clients"]
    env = Environment()
    gpu = SimulatedGPU(env, spec)
    clients = _make_clients(env, gpu, mode, n_clients)
    t0 = env.now
    procs = _reference_workload(env, clients)
    env.run(until=env.all_of(procs))
    elapsed = env.now - t0
    utilization = gpu.sm_utilization(since=t0)
    throughput = gpu.kernels_completed / elapsed
    caps = mode_capabilities(mode)
    return Table1Row(
        mode=mode,
        measured_utilization=utilization,
        measured_throughput=throughput,
        description=caps.description,
        utilization_class=caps.utilization_class,
        amd_equivalent=caps.amd_equivalent,
        reconfiguration=caps.reconfiguration,
        software_required=caps.software_required,
        drawbacks=caps.drawbacks,
    )


def table1_comparison(n_clients: int = 4, spec: GPUSpec = A100_80GB,
                      runner: Optional[SweepRunner] = None) -> list[Table1Row]:
    """Reproduce Table 1: static attributes plus *measured* utilization.

    The same reference workload (``n_clients`` LLaMa-2 decode streams)
    runs under each technique; utilization and aggregate token throughput
    are measured on the simulator.  Techniques are independent runs, so a
    ``runner`` executes them in parallel with result caching.
    """
    configs = [{"mode": mode.value, "n_clients": n_clients,
                "spec": spec.name} for mode in MultiplexMode]
    if runner is None:
        runner = SweepRunner(jobs=1)
    return runner.map(_table1_row_task, configs, task="table1_row")


def _make_clients(env: Environment, gpu: SimulatedGPU, mode: MultiplexMode,
                  n: int):
    if mode is MultiplexMode.TIME_SHARING:
        return [gpu.timeshare_client(f"c{i}") for i in range(n)]
    if mode is MultiplexMode.MPS_DEFAULT:
        daemon = MpsControlDaemon(gpu)
        daemon.start()
        return [daemon.client(f"c{i}") for i in range(n)]
    if mode is MultiplexMode.MPS_PERCENTAGE:
        daemon = MpsControlDaemon(gpu)
        daemon.start()
        pct = max(1, round(100 / n))
        return [daemon.client(f"c{i}", active_thread_percentage=pct)
                for i in range(n)]
    if mode is MultiplexMode.MIG:
        manager = MigManager(gpu)
        env.run(until=env.process(manager.enable()))
        from repro.partition.policy import mig_profiles_for

        instances = [manager.create_instance(p)
                     for p in mig_profiles_for(gpu.spec, n)]
        return [inst.client(f"c{i}") for i, inst in enumerate(instances)]
    if mode is MultiplexMode.VGPU:
        vgpu = VgpuManager(gpu, n)
        return [vgpu.vm(i).client(f"c{i}") for i in range(n)]
    raise AssertionError(mode)


# --------------------------------------------------------------- §6 overheads

@dataclass
class ColdStartBreakdown:
    """§6's three-component cold start for one model configuration."""

    model: str
    dtype: str
    function_init_seconds: float
    gpu_context_seconds: float
    model_load_seconds: float

    @property
    def total_seconds(self) -> float:
        return (self.function_init_seconds + self.gpu_context_seconds
                + self.model_load_seconds)


@dataclass
class OverheadReport:
    cold_starts: list[ColdStartBreakdown]
    mps_repartition_seconds: float
    mps_repartition_cached_seconds: float
    mig_repartition_seconds: float
    mig_extra_over_mps_seconds: float
    mig_disturbs_cotenants: bool


def discussion_overheads(spec: GPUSpec = A100_80GB,
                         n_cotenants: int = 3) -> OverheadReport:
    """Reproduce §6: cold-start decomposition and repartitioning costs."""
    cold = ColdStartModel()
    breakdowns = []
    for model, runtime, dtype in (
        (LLAMA2_7B, FP16, "fp16"),
        (LLAMA2_7B, FP32, "fp32"),
        (LLAMA2_13B, FP16, "fp16"),
        (LLAMA2_13B, FP32, "fp32"),
    ):
        n_gpus = 2 if model is LLAMA2_13B and runtime.dtype_bytes == 4 else 1
        llm = LlamaInference(model, runtime, n_gpus=n_gpus)
        breakdowns.append(ColdStartBreakdown(
            model=model.name,
            dtype=dtype,
            function_init_seconds=cold.function_init_seconds,
            gpu_context_seconds=cold.gpu_context_seconds,
            model_load_seconds=llm.load_seconds,
        ))
    planner = ReconfigurationPlanner(spec, cold)
    llm7 = LlamaInference(LLAMA2_7B, FP16)
    mps = planner.mps_repartition_cost(llm7.load_seconds)
    mps_cached = planner.mps_repartition_cost(llm7.load_seconds,
                                              weight_cache_hit=True)
    mig = planner.mig_repartition_cost(llm7.load_seconds,
                                       n_cotenants=n_cotenants)
    mig_solo = planner.mig_repartition_cost(llm7.load_seconds, n_cotenants=0)
    return OverheadReport(
        cold_starts=breakdowns,
        mps_repartition_seconds=mps.total_seconds,
        mps_repartition_cached_seconds=mps_cached.total_seconds,
        mig_repartition_seconds=mig.total_seconds,
        mig_extra_over_mps_seconds=mig_solo.total_seconds - mps.total_seconds,
        mig_disturbs_cotenants=mig.disturbs_cotenants,
    )


# ---------------------------------------------------------------- §7 ablations

@dataclass
class WeightCacheAblation:
    """Repartition storm cost with and without the GPU-resident cache."""

    n_repartitions: int
    seconds_without_cache: float
    seconds_with_cache: float

    @property
    def speedup(self) -> float:
        return self.seconds_without_cache / self.seconds_with_cache


def weightcache_ablation(n_repartitions: int = 4,
                         spec: GPUSpec = A100_80GB) -> WeightCacheAblation:
    """§7 ablation: repartition a LLaMa-2 7B client repeatedly.

    Without the cache every resize pays the model reload; with it, only
    the first load streams weights.  Both variants execute on the live
    simulator through the reconfiguration planner.
    """
    llm = LlamaInference(LLAMA2_7B, FP16)
    durations = {}
    for cached in (False, True):
        env = Environment()
        node = ComputeNode(env, cores=8, gpu_specs=[spec])
        node.start_mps()
        if cached:
            node.weight_cache = WeightCache()
        planner = ReconfigurationPlanner(spec)
        client = node.mps_daemons[0].client("w", active_thread_percentage=50)
        if cached:
            node.weight_cache.acquire(client, llm.spec.name, llm.memory_per_gpu)
        else:
            client.alloc(llm.memory_per_gpu)

        def storm(env, client=client):
            current = client
            pct_cycle = [25, 50, 25, 50, 25, 50]
            for i in range(n_repartitions):
                current = yield from planner.execute_mps_repartition(
                    node, 0, current, pct_cycle[i % len(pct_cycle)],
                    model_key=llm.spec.name,
                    model_bytes=llm.memory_per_gpu,
                    model_load_seconds=llm.load_seconds,
                )

        env.run(until=env.process(storm(env)))
        durations[cached] = env.now
    return WeightCacheAblation(
        n_repartitions=n_repartitions,
        seconds_without_cache=durations[False],
        seconds_with_cache=durations[True],
    )


@dataclass
class RightsizingRow:
    workload: str
    knee_sms: int
    mps_percentage: int
    mig_profile: str | None
    #: Typed verdict (:class:`~repro.partition.PlacementNeed` value) so
    #: a missing MIG profile is never ambiguous in reports.
    placement: str
    latency_penalty_pct: float
    freed_fraction: float


#: The §7 right-sizing workload grid (JSON-able; "kind" picks the model).
_RIGHTSIZING_WORKLOADS = (
    {"kind": "llm", "name": "llama2-7b fp32 decode", "dtype_bytes": 4},
    {"kind": "llm", "name": "llama2-7b fp16 decode", "dtype_bytes": 2},
    {"kind": "cnn", "name": "resnet50 b1", "model": "resnet50", "batch": 1},
    {"kind": "cnn", "name": "resnet50 b32", "model": "resnet50", "batch": 32},
    {"kind": "cnn", "name": "resnet101 b1", "model": "resnet101", "batch": 1},
    {"kind": "cnn", "name": "vgg16 b1", "model": "vgg16", "batch": 1},
)


def _rightsizing_task(config: dict) -> RightsizingRow:
    """Right-size one workload, from a picklable/JSON-able config."""
    spec = get_spec(config["spec"])
    sizer = RightSizer(spec, tolerance=config["tolerance"])
    if config["kind"] == "llm":
        llm = LlamaInference(
            LLAMA2_7B, InferenceRuntime(dtype_bytes=config["dtype_bytes"]))
        latency_fn = lambda s: llm.completion_seconds(spec, s)  # noqa: E731
    else:
        analyzer = StaticAnalyzer(spec)
        kernels = CNN_ZOO[config["model"]].inference_kernels(
            batch_size=config["batch"])
        latency_fn = lambda s: analyzer.predict_seconds(  # noqa: E731
            kernels, s, host_seconds=0.002)
    rec = sizer.recommend(latency_fn)
    penalty = 100.0 * (rec.predicted_latency / rec.full_gpu_latency - 1.0)
    return RightsizingRow(
        workload=config["name"],
        knee_sms=rec.knee_sms,
        mps_percentage=rec.mps_percentage,
        mig_profile=rec.mig_profile,
        placement=rec.placement.value,
        latency_penalty_pct=penalty,
        freed_fraction=rec.freed_fraction,
    )


def rightsizing_study(spec: GPUSpec = A100_40GB, tolerance: float = 0.05,
                      runner: Optional[SweepRunner] = None
                      ) -> list[RightsizingRow]:
    """§7 ablation: right-size the paper's workloads on one GPU model."""
    configs = [dict(w, spec=spec.name, tolerance=tolerance)
               for w in _RIGHTSIZING_WORKLOADS]
    if runner is None:
        runner = SweepRunner(jobs=1)
    return runner.map(_rightsizing_task, configs, task="rightsizing_workload")
