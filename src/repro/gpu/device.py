"""The simulated GPU: SM and bandwidth sharing across multiplexed clients.

Model (DESIGN.md §5)
--------------------
Every running kernel is a fluid task whose progress rate is the roofline
minimum of

- a *compute* rate: ``flops_per_sm x efficiency x allocated_SMs / flops``;
- a *memory* rate: ``allocated_bandwidth / bytes_moved``.

Clients are grouped into *share groups*, the unit of isolation:

=============  ==========================  =============================
Technique      Share groups                Discipline
=============  ==========================  =============================
time-sharing   one device-wide group       temporal (one kernel at a time,
                                           context-switch cost between
                                           clients)
MPS (default)  one device-wide group       spatial (all kernels resident)
MPS + GPU %    one device-wide group,      spatial; *bandwidth is not
               per-client SM caps          capped* — matches real MPS
MIG            one group per instance      spatial; SM *and* bandwidth
                                           *and* memory hard-capped
vGPU           one group per VM            temporal within a VM; fair
                                           fluid share across VMs
=============  ==========================  =============================

SM allocation: within a group, each kernel demands
``min(kernel.max_sms, client.sm_cap, group SM budget)``; demands exceeding
the budget are scaled back proportionally.  Groups with a ``fair`` SM
policy (vGPU) split the device SMs evenly among *active* groups.

Bandwidth allocation: water-filling of the device bandwidth over all
resident kernels, with per-group hard caps for MIG-style isolation.  A
compute-bound kernel only demands the bandwidth needed to keep memory off
its critical path, so leftover bandwidth flows to memory-bound kernels —
this work-conserving behaviour is exactly why MPS outperforms MIG in the
paper's 3- and 4-way experiments.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.core import Environment, Event
from repro.sim.fluid import FluidPool, FluidTask
from repro.gpu.kernel import Kernel
from repro.gpu.memory import MemoryPool
from repro.gpu.specs import GPUSpec

__all__ = ["GpuClient", "ShareGroup", "SimulatedGPU"]

_client_ids = itertools.count()


@dataclass
class ShareGroup:
    """A contention domain on the device (whole GPU, MIG instance, or VM)."""

    name: str
    device: "SimulatedGPU"
    #: Hard SM budget for the whole group.
    sm_budget: int
    #: Hard bandwidth cap (bytes/s); ``None`` means the device bandwidth.
    bw_cap: Optional[float]
    #: Memory pool backing this group's clients.
    memory: MemoryPool
    #: "spatial": all kernels resident; "temporal": one at a time.
    discipline: str = "spatial"
    #: "cap": sm_budget is absolute; "fair": split device SMs evenly
    #: among active groups with this policy (vGPU time-slicing model).
    sm_policy: str = "cap"
    #: Multiplicative slowdown applied to this group's compute rates
    #: (models vGPU/hypervisor scheduling inefficiency).
    overhead_factor: float = 1.0
    clients: list["GpuClient"] = field(default_factory=list)
    # -- temporal-discipline state --
    _queues: dict | None = None        # client id -> deque of tasks
    _rr: "deque | None" = None         # round-robin of client ids with work
    _idle: Optional[Event] = None      # pump sleeps on this when empty
    _resident: FluidTask | None = None
    _serving_cid: Optional[int] = None  # client whose quantum is active
    _last_cid: Optional[int] = None

    def __post_init__(self) -> None:
        if self.discipline not in ("spatial", "temporal"):
            raise ValueError(f"unknown discipline {self.discipline!r}")
        if self.sm_policy not in ("cap", "fair"):
            raise ValueError(f"unknown sm_policy {self.sm_policy!r}")
        if self.discipline == "temporal":
            self._queues = {}
            self._rr = deque()
            self.device.env.process(self._pump())

    @property
    def effective_bw_cap(self) -> float:
        return self.device.spec.bandwidth if self.bw_cap is None else self.bw_cap

    def _pump(self):
        """Temporal discipline: quantum-based round-robin time-slicing.

        One context is resident at a time.  Within a quantum, the
        resident client's queued kernels run back to back (a workload of
        many tiny kernels is not charged a context switch per kernel);
        when the quantum expires and other clients are waiting, the pump
        pays the switch cost and rotates — NVIDIA's default behaviour.
        """
        env = self.device.env
        spec = self.device.spec
        while True:
            while not self._rr:
                self._idle = env.event(name=f"{self.name}-idle")
                yield self._idle
                self._idle = None
            cid = self._rr.popleft()
            if self._last_cid is not None and self._last_cid != cid:
                yield env.timeout(spec.timeslice_switch_seconds)
            self._last_cid = cid
            self._serving_cid = cid
            quantum_end = env.now + spec.timeslice_quantum_seconds
            queue = self._queues[cid]
            while True:
                if not queue:
                    # Let same-instant continuations (stream callbacks)
                    # enqueue the client's next kernel before deciding.
                    yield env.timeout(0)
                    if not queue:
                        break
                task = queue.popleft()
                self._resident = task
                self.device._admit(task)
                try:
                    yield task.done
                except Exception:  # noqa: BLE001
                    # Kernel killed (e.g. injected GPU error); the
                    # launcher observes the failure — the pump survives.
                    pass
                self._resident = None
                if env.now >= quantum_end and self._rr:
                    break  # quantum used up and someone else is waiting
            self._serving_cid = None
            if queue:
                self._rr.append(cid)  # unfinished: back of the rotation

    def submit(self, task: FluidTask) -> None:
        if self.discipline == "temporal":
            cid = task.meta["client"].cid
            queue = self._queues.get(cid)
            if queue is None:
                queue = deque()
                self._queues[cid] = queue
            was_empty = not queue
            queue.append(task)
            if (was_empty and cid not in self._rr
                    and cid != self._serving_cid):
                self._rr.append(cid)
            if self._idle is not None and not self._idle.triggered:
                self._idle.succeed()
        else:
            self.device._admit(task)


class GpuClient:
    """A process using the GPU (one FaaS function instance).

    Clients are created through the multiplexing managers
    (:class:`~repro.gpu.mps.MpsControlDaemon`,
    :class:`~repro.gpu.mig.MigInstance`, ...) or
    :meth:`SimulatedGPU.timeshare_client`, never directly.
    """

    def __init__(self, device: "SimulatedGPU", group: ShareGroup, name: str,
                 sm_cap: Optional[int] = None):
        self.device = device
        self.group = group
        self.name = name
        self.cid = next(_client_ids)
        #: Per-client SM cap (MPS active-thread-percentage); immutable —
        #: real MPS requires a process restart to change it (§6).
        self._sm_cap = group.sm_budget if sm_cap is None else int(sm_cap)
        if self._sm_cap <= 0:
            raise ValueError("sm_cap must be positive")
        self._alive = True
        self.kernels_launched = 0
        group.clients.append(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<GpuClient {self.name!r} group={self.group.name!r}>"

    @property
    def sm_cap(self) -> int:
        return self._sm_cap

    @property
    def alive(self) -> bool:
        return self._alive

    # -- memory -----------------------------------------------------------
    def alloc(self, nbytes: float) -> None:
        """Reserve device memory (raises :class:`GpuOutOfMemory`)."""
        self._check_alive()
        self.group.memory.allocate(self.name, nbytes)

    def free(self, nbytes: float | None = None) -> float:
        return self.group.memory.release(self.name, nbytes)

    @property
    def memory_used(self) -> float:
        return self.group.memory.usage_of(self.name)

    # -- kernels ------------------------------------------------------------
    def launch(self, kernel: Kernel) -> Event:
        """Submit a kernel; the returned event fires on completion."""
        self._check_alive()
        self.kernels_launched += 1
        return self.device.submit(self, kernel)

    def run(self, kernel: Kernel):
        """Generator helper: launch overhead + completion (yield from it)."""
        yield self.device.env.timeout(self.device.spec.launch_overhead)
        yield self.launch(kernel)

    def close(self) -> None:
        """Tear the client down, releasing all memory it holds."""
        if not self._alive:
            return
        self._alive = False
        self.group.memory.release(self.name)
        self.group.clients.remove(self)

    def _check_alive(self) -> None:
        if not self._alive:
            raise RuntimeError(f"client {self.name!r} has been closed")


class SimulatedGPU:
    """One simulated GPU device."""

    def __init__(self, env: Environment, spec: GPUSpec, name: str = "gpu0"):
        self.env = env
        self.spec = spec
        self.name = name
        self.memory = MemoryPool(spec.memory_bytes, name=f"{name}-hbm")
        self.pool = FluidPool(env, self._allocate, name=f"{name}-pool")
        self.groups: list[ShareGroup] = []
        #: Device-wide default group (used by time-sharing and MPS).
        self.default_group = ShareGroup(
            name=f"{name}-default",
            device=self,
            sm_budget=spec.sms,
            bw_cap=None,
            memory=self.memory,
            discipline="temporal",  # NVIDIA default: time-sliced contexts
        )
        self.groups.append(self.default_group)
        # Utilization accounting (integrals of current allocations).
        self._cur_sm_alloc = 0.0
        self._cur_bw_alloc = 0.0
        self._integral_t0 = env.now
        self.sm_seconds = 0.0
        self.bw_byte_seconds = 0.0
        self.kernels_completed = 0

    # -- client factories ---------------------------------------------------
    def timeshare_client(self, name: str) -> GpuClient:
        """A client under the default time-sliced context scheduling."""
        if self.default_group.discipline != "temporal":
            raise RuntimeError(
                f"{self.name}: default group is not time-sharing "
                "(an MPS daemon owns it); use the daemon to create clients"
            )
        return GpuClient(self, self.default_group, name)

    def add_group(self, group: ShareGroup) -> ShareGroup:
        self.groups.append(group)
        self.pool.poke()
        return group

    def remove_group(self, group: ShareGroup) -> None:
        if group.clients:
            raise RuntimeError(
                f"cannot remove group {group.name!r}: {len(group.clients)} "
                "clients still attached"
            )
        self.groups.remove(group)
        self.pool.poke()

    # -- kernel path ----------------------------------------------------------
    def submit(self, client: GpuClient, kernel: Kernel) -> Event:
        task = FluidTask(self.env, work=1.0,
                         meta={"client": client, "kernel": kernel})
        task.done.callbacks.append(self._on_complete)
        client.group.submit(task)
        return task.done

    def _admit(self, task: FluidTask) -> None:
        self.pool.add(task)

    def _on_complete(self, ev: Event) -> None:
        if ev.ok:
            self.kernels_completed += 1
        if len(self.pool) == 0:
            # Allocator will not be called again until new work arrives;
            # close the utilization integral now.
            self._integrate()
            self._cur_sm_alloc = 0.0
            self._cur_bw_alloc = 0.0

    # -- utilization ------------------------------------------------------------
    def _integrate(self) -> None:
        dt = self.env.now - self._integral_t0
        if dt > 0:
            self.sm_seconds += self._cur_sm_alloc * dt
            self.bw_byte_seconds += self._cur_bw_alloc * dt
        self._integral_t0 = self.env.now

    def sm_utilization(self, since: float = 0.0) -> float:
        """Mean SM utilization in [0,1] from ``since`` until now."""
        self._integrate()
        horizon = self.env.now - since
        if horizon <= 0:
            return 0.0
        return self.sm_seconds / (self.spec.sms * horizon)

    # -- the allocator ------------------------------------------------------------
    def _allocate(self, tasks: list[FluidTask]) -> None:
        self._integrate()
        spec = self.spec

        by_group: dict[int, list[FluidTask]] = {}
        group_of: dict[int, ShareGroup] = {}
        for t in tasks:
            g = t.meta["client"].group
            by_group.setdefault(id(g), []).append(t)
            group_of[id(g)] = g

        # SM budgets: "fair" groups (vGPU VMs) split the device evenly.
        fair_groups = [gid for gid, g in group_of.items() if g.sm_policy == "fair"]
        fair_share = spec.sms / len(fair_groups) if fair_groups else 0.0

        sm_alloc: dict[int, float] = {}
        bw_demand: dict[int, float] = {}
        bw_group_cap: dict[int, float] = {}

        for gid, group_tasks in by_group.items():
            group = group_of[gid]
            budget = fair_share if group.sm_policy == "fair" else float(group.sm_budget)
            demands = {}
            by_client: dict[int, list[FluidTask]] = {}
            for t in group_tasks:
                client: GpuClient = t.meta["client"]
                kernel: Kernel = t.meta["kernel"]
                demands[t.tid] = float(min(kernel.max_sms, client.sm_cap, budget))
                by_client.setdefault(id(client), []).append(t)
            # The MPS percentage caps a *client's aggregate* SM usage, not
            # each kernel: several concurrent streams from one capped
            # client must share the client's slice.
            for client_tasks in by_client.values():
                cap = float(client_tasks[0].meta["client"].sm_cap)
                subtotal = sum(demands[t.tid] for t in client_tasks)
                if subtotal > cap:
                    shrink = cap / subtotal
                    for t in client_tasks:
                        demands[t.tid] *= shrink
            total = sum(demands.values())
            scale = min(1.0, budget / total) if total > 0 else 0.0
            for t in group_tasks:
                sm_alloc[t.tid] = demands[t.tid] * scale

            cap = group.effective_bw_cap
            if group.sm_policy == "fair":
                cap = min(cap, spec.bandwidth / max(1, len(fair_groups)))
            bw_group_cap[gid] = cap

            for t in group_tasks:
                kernel = t.meta["kernel"]
                if kernel.bytes_moved == 0:
                    bw_demand[t.tid] = 0.0
                    continue
                # Bandwidth that keeps memory off the critical path given
                # the SM allocation (compute-rate-matched demand).
                if kernel.flops > 0:
                    compute_rate = (
                        spec.flops_per_sm * kernel.efficiency * sm_alloc[t.tid]
                        / kernel.flops
                    )
                    bw_demand[t.tid] = kernel.bytes_moved * compute_rate
                else:
                    bw_demand[t.tid] = float("inf")

        bw_alloc = _hierarchical_waterfill(
            by_group, bw_demand, bw_group_cap, spec.bandwidth
        )

        total_sm = 0.0
        total_bw = 0.0
        for t in tasks:
            kernel = t.meta["kernel"]
            group = t.meta["client"].group
            sms = sm_alloc[t.tid]
            bw = bw_alloc[t.tid]
            total_sm += sms
            total_bw += bw
            rate_c = float("inf")
            if kernel.flops > 0:
                rate_c = (
                    spec.flops_per_sm * kernel.efficiency * sms / kernel.flops
                ) * group.overhead_factor
            rate_m = float("inf")
            if kernel.bytes_moved > 0 and bw_demand[t.tid] > 0:
                # A zero bandwidth *demand* (possible by underflow for
                # kernels moving a handful of bytes) means memory can
                # never be this kernel's bottleneck — leave it unthrottled
                # rather than dividing a zero allocation.
                rate_m = bw / kernel.bytes_moved
            rate = min(rate_c, rate_m)
            t.rate = 0.0 if rate == float("inf") else rate

        self._cur_sm_alloc = total_sm
        self._cur_bw_alloc = total_bw


def _hierarchical_waterfill(
    by_group: dict[int, list[FluidTask]],
    demand: dict[int, float],
    group_cap: dict[int, float],
    total_bw: float,
) -> dict[int, float]:
    """Water-fill ``total_bw`` over tasks honouring per-group hard caps.

    Phase 1 fixes each group's aggregate share: groups whose demand is below
    both their cap and the fair share are fully satisfied, and the surplus
    is re-filled over the rest.  Phase 2 water-fills within each group.
    """
    group_demand = {
        gid: min(sum(demand[t.tid] for t in ts), group_cap[gid])
        for gid, ts in by_group.items()
    }
    group_share = _waterfill(group_demand, group_cap, total_bw)

    alloc: dict[int, float] = {}
    for gid, ts in by_group.items():
        task_demand = {t.tid: demand[t.tid] for t in ts}
        task_cap = {t.tid: group_share[gid] for t in ts}
        alloc.update(_waterfill(task_demand, task_cap, group_share[gid]))
    return alloc


def _waterfill(demand: dict, cap: dict, total: float) -> dict:
    """Classic water-filling: satisfy small demands, split the rest fairly.

    The loop terminates in at most ``len(demand)`` iterations: every pass
    either fully satisfies at least one client (removing it) or returns.
    The remaining-budget test is exact on purpose — an absolute epsilon
    here would zero out legitimately tiny allocations (e.g. a kernel
    moving a few bytes) and stall its fluid task forever.
    """
    alloc = {k: 0.0 for k in demand}
    active = [k for k in demand if min(demand[k], cap[k]) > 0]
    remaining = total
    while active and remaining > 0.0:
        share = remaining / len(active)
        satisfied = [k for k in active if min(demand[k], cap[k]) <= share]
        if not satisfied:
            for k in active:
                alloc[k] = min(cap[k], share)
            return alloc
        for k in satisfied:
            alloc[k] = min(demand[k], cap[k])
            remaining -= alloc[k]
        active = [k for k in active if k not in set(satisfied)]
    return alloc
