"""The simulated GPU: SM and bandwidth sharing across multiplexed clients.

Model (DESIGN.md §5)
--------------------
Every running kernel is a fluid task whose progress rate is the roofline
minimum of

- a *compute* rate: ``flops_per_sm x efficiency x allocated_SMs / flops``;
- a *memory* rate: ``allocated_bandwidth / bytes_moved``.

Clients are grouped into *share groups*, the unit of isolation:

=============  ==========================  =============================
Technique      Share groups                Discipline
=============  ==========================  =============================
time-sharing   one device-wide group       temporal (one kernel at a time,
                                           context-switch cost between
                                           clients)
MPS (default)  one device-wide group       spatial (all kernels resident)
MPS + GPU %    one device-wide group,      spatial; *bandwidth is not
               per-client SM caps          capped* — matches real MPS
MIG            one group per instance      spatial; SM *and* bandwidth
                                           *and* memory hard-capped
vGPU           one group per VM            temporal within a VM; fair
                                           fluid share across VMs
=============  ==========================  =============================

SM allocation: within a group, each kernel demands
``min(kernel.max_sms, client.sm_cap, group SM budget)``; demands exceeding
the budget are scaled back proportionally.  Groups with a ``fair`` SM
policy (vGPU) split the device SMs evenly among *active* groups.

Bandwidth allocation: water-filling of the device bandwidth over all
resident kernels, with per-group hard caps for MIG-style isolation.  A
compute-bound kernel only demands the bandwidth needed to keep memory off
its critical path, so leftover bandwidth flows to memory-bound kernels —
this work-conserving behaviour is exactly why MPS outperforms MIG in the
paper's 3- and 4-way experiments.
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.sim.core import Environment, Event, SimulationError
from repro.sim.fluid import FluidPool, FluidTask
from repro.sim.numerics import KahanSum
from repro.gpu.kernel import Kernel
from repro.gpu.memory import MemoryPool
from repro.gpu.specs import GPUSpec

__all__ = ["AllocatorMismatch", "GpuClient", "ShareGroup", "SimulatedGPU"]

_client_ids = itertools.count()
_group_ids = itertools.count()

#: Group size at which the allocator's per-group math switches from the
#: scalar loops to numpy kernels (below it, ufunc dispatch overhead
#: exceeds the loop cost; the paths are bit-identical either way).
_VEC_MIN_GROUP = 64


class AllocatorMismatch(SimulationError):
    """The incremental allocator diverged from the full recompute."""


@dataclass
class ShareGroup:
    """A contention domain on the device (whole GPU, MIG instance, or VM)."""

    name: str
    device: "SimulatedGPU"
    #: Hard SM budget for the whole group.
    sm_budget: int
    #: Hard bandwidth cap (bytes/s); ``None`` means the device bandwidth.
    bw_cap: Optional[float]
    #: Memory pool backing this group's clients.
    memory: MemoryPool
    #: "spatial": all kernels resident; "temporal": one at a time.
    discipline: str = "spatial"
    #: "cap": sm_budget is absolute; "fair": split device SMs evenly
    #: among active groups with this policy (vGPU time-slicing model).
    sm_policy: str = "cap"
    #: Multiplicative slowdown applied to this group's compute rates
    #: (models vGPU/hypervisor scheduling inefficiency).
    overhead_factor: float = 1.0
    clients: list["GpuClient"] = field(default_factory=list)
    #: Stable identity for cross-call allocator caching (``id()`` can be
    #: recycled after a group is garbage-collected; this cannot).
    gid: int = field(default_factory=lambda: next(_group_ids), init=False)
    # -- temporal-discipline state --
    _queues: dict | None = None        # client id -> deque of tasks
    _rr: "deque | None" = None         # round-robin of client ids with work
    _idle: Optional[Event] = None      # pump sleeps on this when empty
    _resident: FluidTask | None = None
    _serving_cid: Optional[int] = None  # client whose quantum is active
    _last_cid: Optional[int] = None

    def __post_init__(self) -> None:
        if self.discipline not in ("spatial", "temporal"):
            raise ValueError(f"unknown discipline {self.discipline!r}")
        if self.sm_policy not in ("cap", "fair"):
            raise ValueError(f"unknown sm_policy {self.sm_policy!r}")
        if self.discipline == "temporal":
            self._queues = {}
            self._rr = deque()
            self.device.env.process(self._pump())

    @property
    def effective_bw_cap(self) -> float:
        return self.device.spec.bandwidth if self.bw_cap is None else self.bw_cap

    def _pump(self):
        """Temporal discipline: quantum-based round-robin time-slicing.

        One context is resident at a time.  Within a quantum, the
        resident client's queued kernels run back to back (a workload of
        many tiny kernels is not charged a context switch per kernel);
        when the quantum expires and other clients are waiting, the pump
        pays the switch cost and rotates — NVIDIA's default behaviour.
        """
        env = self.device.env
        spec = self.device.spec
        while True:
            while not self._rr:
                self._idle = env.event(name=f"{self.name}-idle")
                yield self._idle
                self._idle = None
            cid = self._rr.popleft()
            if self._last_cid is not None and self._last_cid != cid:
                yield env.timeout(spec.timeslice_switch_seconds)
            self._last_cid = cid
            self._serving_cid = cid
            quantum_end = env.now + spec.timeslice_quantum_seconds
            queue = self._queues[cid]
            while True:
                if not queue:
                    # Let same-instant continuations (stream callbacks)
                    # enqueue the client's next kernel before deciding.
                    yield env.timeout(0)
                    if not queue:
                        break
                task = queue.popleft()
                self._resident = task
                self.device._admit(task)
                try:
                    yield task.done
                except Exception:  # noqa: BLE001
                    # Kernel killed (e.g. injected GPU error); the
                    # launcher observes the failure — the pump survives.
                    pass
                self._resident = None
                if env.now >= quantum_end and self._rr:
                    break  # quantum used up and someone else is waiting
            self._serving_cid = None
            if queue:
                self._rr.append(cid)  # unfinished: back of the rotation

    def submit(self, task: FluidTask) -> None:
        if self.discipline == "temporal":
            cid = task.meta["client"].cid
            queue = self._queues.get(cid)
            if queue is None:
                queue = deque()
                self._queues[cid] = queue
            was_empty = not queue
            queue.append(task)
            if (was_empty and cid not in self._rr
                    and cid != self._serving_cid):
                self._rr.append(cid)
            if self._idle is not None and not self._idle.triggered:
                self._idle.succeed()
        else:
            self.device._admit(task)


class GpuClient:
    """A process using the GPU (one FaaS function instance).

    Clients are created through the multiplexing managers
    (:class:`~repro.gpu.mps.MpsControlDaemon`,
    :class:`~repro.gpu.mig.MigInstance`, ...) or
    :meth:`SimulatedGPU.timeshare_client`, never directly.
    """

    def __init__(self, device: "SimulatedGPU", group: ShareGroup, name: str,
                 sm_cap: Optional[int] = None):
        self.device = device
        self.group = group
        self.name = name
        self.cid = next(_client_ids)
        #: Per-client SM cap (MPS active-thread-percentage); immutable —
        #: real MPS requires a process restart to change it (§6).
        self._sm_cap = group.sm_budget if sm_cap is None else int(sm_cap)
        if self._sm_cap <= 0:
            raise ValueError("sm_cap must be positive")
        self._alive = True
        self.kernels_launched = 0
        group.clients.append(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<GpuClient {self.name!r} group={self.group.name!r}>"

    @property
    def sm_cap(self) -> int:
        return self._sm_cap

    @property
    def alive(self) -> bool:
        return self._alive

    # -- memory -----------------------------------------------------------
    def alloc(self, nbytes: float) -> None:
        """Reserve device memory (raises :class:`GpuOutOfMemory`)."""
        self._check_alive()
        self.group.memory.allocate(self.name, nbytes)

    def free(self, nbytes: float | None = None) -> float:
        return self.group.memory.release(self.name, nbytes)

    @property
    def memory_used(self) -> float:
        return self.group.memory.usage_of(self.name)

    # -- kernels ------------------------------------------------------------
    def launch(self, kernel: Kernel) -> Event:
        """Submit a kernel; the returned event fires on completion."""
        self._check_alive()
        self.kernels_launched += 1
        return self.device.submit(self, kernel)

    def run(self, kernel: Kernel):
        """Generator helper: launch overhead + completion (yield from it)."""
        yield self.device.env.timeout(self.device.spec.launch_overhead)
        yield self.launch(kernel)

    def close(self) -> None:
        """Tear the client down, releasing all memory it holds."""
        if not self._alive:
            return
        self._alive = False
        self.group.memory.release(self.name)
        self.group.clients.remove(self)

    def _check_alive(self) -> None:
        if not self._alive:
            raise RuntimeError(f"client {self.name!r} has been closed")


class _GroupAllocState:
    """Cached per-group allocation results (the incremental allocator).

    Valid while the group's membership signature, SM budget, and overhead
    factor are unchanged; the bandwidth split additionally requires the
    group's share of device bandwidth to be unchanged.  Every cached float
    is exactly the value the full recompute would produce, because it *is*
    that value — the cache memoises, it never delta-updates.
    """

    __slots__ = ("budget", "overhead", "sm_list", "bwd_list",
                 "bw_demand_sum", "share", "bw_list", "sm_sum", "bw_sum",
                 "demands", "kinfo", "gcap", "gdemand")

    def __init__(self) -> None:
        self.budget = -1.0
        self.overhead = 0.0
        # Group-level bandwidth cap and cap-limited demand as of the
        # last stale pass (inputs to the group-level waterfill).
        self.gcap = 0.0
        self.gdemand = 0.0
        # Per-task allocation columns as parallel lists in group-task
        # (residency/kinfo) order — positional access keeps the hot
        # rates pass free of per-task dict lookups.
        self.sm_list: list[float] = []
        self.bwd_list: list[float] = []
        self.bw_demand_sum = 0.0
        self.share: Optional[float] = None
        self.bw_list: list[float] = []
        # Per-task caches that survive recomputes: the raw SM demand
        # (a function of the task's kernel, its client's cap, and the
        # group budget — the caller rebuilds the state on budget change)
        # and the kernel constants the bandwidth pass reads.  Entries
        # for departed tasks are popped by the membership hook.
        self.demands: dict[int, float] = {}
        self.kinfo: dict[int, tuple] = {}
        # Per-group subtotals of sm_list/bw_list (in group-task order):
        # the device totals are the sum of these over groups, so a clean
        # group contributes O(1) work to the totals instead of O(tasks).
        self.sm_sum = 0.0
        self.bw_sum = 0.0


class SimulatedGPU:
    """One simulated GPU device.

    Parameters
    ----------
    incremental:
        Reuse per-group allocation state across membership changes (the
        default).  Results are bit-identical to the full recompute; set
        ``False`` to force the original full path on every change.
    cross_check:
        Run *both* paths on every allocation and raise
        :class:`AllocatorMismatch` on any difference (debug mode; also
        enabled by the ``REPRO_ALLOC_CHECK=1`` environment variable).
    """

    def __init__(self, env: Environment, spec: GPUSpec, name: str = "gpu0",
                 incremental: bool = True,
                 cross_check: Optional[bool] = None):
        self.env = env
        self.spec = spec
        self.name = name
        self.memory = MemoryPool(spec.memory_bytes, name=f"{name}-hbm")
        self.incremental = incremental
        self.pool = FluidPool(
            env, self._allocate, name=f"{name}-pool",
            on_change=self._on_membership if incremental else None)
        self.groups: list[ShareGroup] = []
        #: Device-wide default group (used by time-sharing and MPS).
        self.default_group = ShareGroup(
            name=f"{name}-default",
            device=self,
            sm_budget=spec.sms,
            bw_cap=None,
            memory=self.memory,
            discipline="temporal",  # NVIDIA default: time-sliced contexts
        )
        self.groups.append(self.default_group)
        # Utilization accounting (integrals of current allocations).
        # Compensated sums: at millions of kernel events the naive float
        # accumulation drifts enough to fail conservation checks.
        self._cur_sm_alloc = 0.0
        self._cur_bw_alloc = 0.0
        self._integral_t0 = env.now
        self._sm_seconds = KahanSum()
        self._bw_byte_seconds = KahanSum()
        self.kernels_completed = 0
        # Incremental-allocator state and diagnostics.
        if cross_check is None:
            cross_check = os.environ.get("REPRO_ALLOC_CHECK", "") not in ("", "0")
        self.cross_check = cross_check
        self._galloc: dict[int, _GroupAllocState] = {}
        # Residency indexes maintained by the pool's membership hook
        # (incremental mode only): resident tasks per group in admission
        # order, the group objects themselves, and the set of groups
        # whose membership changed since the last allocation.  They spare
        # the allocator the O(#tasks) regroup-and-signature pass that
        # previously dominated its cost at scale.
        self._resident: dict[int, dict[int, FluidTask]] = {}
        self._rgroups: dict[int, ShareGroup] = {}
        self._dirty: set[int] = set()
        # Per-group client-residency counts and the number of clients
        # with more than one resident task: when that is zero, the MPS
        # aggregate-cap shrink provably cannot fire and the recompute
        # skips the whole by-client pass.
        self._gclients: dict[int, dict[int, int]] = {}
        self._grep: dict[int, int] = {}
        # Cross-call caches for the incremental path.  With k resident
        # groups and (typically) one dirty group per membership change,
        # the allocator only visits stale groups: the first-task group
        # ordering, the count of fair-policy groups, and each group's
        # bandwidth cap and cap-limited demand are all carried between
        # calls and invalidated by the membership hook (ordering, fair
        # count) or by a pool-epoch / fair-count change (caps, demands —
        # external capacity changes reach the allocator via poke, which
        # bumps the pool epoch).
        self._order: list[tuple[int, int]] = []
        self._order_stale = True
        self._n_fair = 0
        # Group-order-aligned list of the per-group state objects: the
        # demand-sum and totals loops iterate it without dict lookups.
        # Invalidated with the ordering, and whenever a state object is
        # (re)created outside an ordering change (solo-path eviction).
        self._ostates: list[_GroupAllocState] = []
        self._ostates_stale = True
        self._seen_epoch = -1
        self._seen_n_fair = -1
        # Whether the last incremental pass water-filled the group
        # shares.  While consecutive passes stay uncontended, a clean
        # group's share equals its unchanged demand, so the rates pass
        # can visit stale groups only.
        self._was_contended = True
        #: Allocator invocations (every admit/complete/poke that changed
        #: the resident set or external capacity).
        self.alloc_calls = 0
        #: Full per-group demand recomputations (dirty groups).
        self.alloc_group_recomputes = 0
        #: Groups served entirely from cached state.
        self.alloc_group_reuses = 0
        #: Single-resident-kernel fast-path hits.
        self.alloc_fast_path = 0
        env.gpus.append(self)

    @property
    def sm_seconds(self) -> float:
        """Integral of allocated SMs over time (compensated sum)."""
        return self._sm_seconds.value

    @property
    def bw_byte_seconds(self) -> float:
        """Integral of allocated bandwidth over time (compensated sum)."""
        return self._bw_byte_seconds.value

    # -- client factories ---------------------------------------------------
    def timeshare_client(self, name: str) -> GpuClient:
        """A client under the default time-sliced context scheduling."""
        if self.default_group.discipline != "temporal":
            raise RuntimeError(
                f"{self.name}: default group is not time-sharing "
                "(an MPS daemon owns it); use the daemon to create clients"
            )
        return GpuClient(self, self.default_group, name)

    def add_group(self, group: ShareGroup) -> ShareGroup:
        self.groups.append(group)
        self.pool.poke()
        return group

    def remove_group(self, group: ShareGroup) -> None:
        if group.clients:
            raise RuntimeError(
                f"cannot remove group {group.name!r}: {len(group.clients)} "
                "clients still attached"
            )
        self.groups.remove(group)
        self.pool.poke()

    # -- kernel path ----------------------------------------------------------
    def submit(self, client: GpuClient, kernel: Kernel) -> Event:
        task = FluidTask(self.env, work=1.0,
                         meta={"client": client, "kernel": kernel})
        task.done.callbacks.append(self._on_complete)
        client.group.submit(task)
        return task.done

    def _admit(self, task: FluidTask) -> None:
        self.pool.add(task)

    def _on_complete(self, ev: Event) -> None:
        if ev.ok:
            self.kernels_completed += 1
        if len(self.pool) == 0:
            # Allocator will not be called again until new work arrives;
            # close the utilization integral now.
            self._integrate()
            self._cur_sm_alloc = 0.0
            self._cur_bw_alloc = 0.0

    # -- utilization ------------------------------------------------------------
    def _integrate(self) -> None:
        dt = self.env.now - self._integral_t0
        if dt > 0:
            self._sm_seconds.add(self._cur_sm_alloc * dt)
            self._bw_byte_seconds.add(self._cur_bw_alloc * dt)
        self._integral_t0 = self.env.now

    def sm_utilization(self, since: float = 0.0) -> float:
        """Mean SM utilization in [0,1] from ``since`` until now."""
        self._integrate()
        horizon = self.env.now - since
        if horizon <= 0:
            return 0.0
        return self.sm_seconds / (self.spec.sms * horizon)

    # -- the allocator ------------------------------------------------------------
    def _on_membership(self, task: FluidTask, added: bool) -> None:
        """FluidPool membership hook (incremental mode only).

        Keeps ``_resident``/``_rgroups`` in sync with the pool and marks
        the affected group dirty, so the allocator never has to rebuild
        the grouping from the task list.  Per-group dicts preserve
        admission order (inserts append, deletes keep order), matching
        the full path's iteration contract.
        """
        client = task.meta["client"]
        group: ShareGroup = client.group
        gid = group.gid
        cid = id(client)
        if added:
            res = self._resident.get(gid)
            if res is None:
                self._resident[gid] = res = {}
                self._rgroups[gid] = group
                self._gclients[gid] = {}
                self._grep[gid] = 0
                self._order_stale = True
                if group.sm_policy == "fair":
                    self._n_fair += 1
            res[task.tid] = task
            counts = self._gclients[gid]
            c = counts.get(cid, 0) + 1
            counts[cid] = c
            if c == 2:
                self._grep[gid] += 1
        else:
            res = self._resident[gid]
            if next(iter(res)) == task.tid:
                # The group's first resident task changes (or the group
                # vanishes): the cached first-task ordering is stale.
                self._order_stale = True
            del res[task.tid]
            counts = self._gclients[gid]
            c = counts[cid] - 1
            if c:
                counts[cid] = c
                if c == 1:
                    self._grep[gid] -= 1
            else:
                del counts[cid]
            st = self._galloc.get(gid)
            if st is not None:
                st.demands.pop(task.tid, None)
                st.kinfo.pop(task.tid, None)
            if not res:
                del self._resident[gid]
                del self._rgroups[gid]
                del self._gclients[gid]
                del self._grep[gid]
                # A vanished group must not leave cached state behind:
                # gids are never reused, and the solo path relies on the
                # cache only holding currently-resident groups.
                self._galloc.pop(gid, None)
                if group.sm_policy == "fair":
                    self._n_fair -= 1
        self._dirty.add(gid)

    def _allocate(self, tasks: list[FluidTask]) -> None:
        """FluidPool callback: divide SMs and bandwidth over ``tasks``.

        Dispatches to the incremental path (per-group memoisation, solo
        fast path) or the original full recompute.  Both produce
        bit-identical rates; ``cross_check`` runs both and compares.
        """
        self.alloc_calls += 1
        self._integrate()
        if self.incremental:
            if len(tasks) == 1:
                self._allocate_solo(tasks[0])
            else:
                self._allocate_incremental(tasks)
            if self.cross_check:
                self._verify_against_full(tasks)
        else:
            sm_alloc, bw_alloc, rates, total_sm, total_bw = \
                self._compute_full(tasks)
            for t in tasks:
                t.rate = rates[t.tid]
            self._cur_sm_alloc = total_sm
            self._cur_bw_alloc = total_bw

    def _allocate_solo(self, t: FluidTask) -> None:
        """One resident kernel: the water level is trivial.

        Replicates the full path's arithmetic *exactly* (same operations
        in the same order) so the result is bit-identical; the derivation
        is spelled out in docs/architecture.md.
        """
        self.alloc_fast_path += 1
        spec = self.spec
        client: GpuClient = t.meta["client"]
        kernel: Kernel = t.meta["kernel"]
        group = client.group
        fair = group.sm_policy == "fair"
        budget = spec.sms / 1 if fair else float(group.sm_budget)
        # SM demand: a single kernel is never shrunk by its client's
        # aggregate cap (the demand already honours ``sm_cap``).
        demand = float(min(kernel.max_sms, client.sm_cap, budget))
        scale = min(1.0, budget / demand) if demand > 0 else 0.0
        sms = demand * scale
        cap = group.effective_bw_cap
        if fair:
            cap = min(cap, spec.bandwidth / 1)
        if kernel.bytes_moved == 0:
            bwd = 0.0
        elif kernel.flops > 0:
            compute_rate = (
                spec.flops_per_sm * kernel.efficiency * sms / kernel.flops
            )
            bwd = kernel.bytes_moved * compute_rate
        else:
            bwd = float("inf")
        # Hierarchical waterfill with one group holding one task
        # collapses to min(demand, group cap, device bandwidth).
        bw = min(bwd, cap, spec.bandwidth)
        rate_c = float("inf")
        if kernel.flops > 0:
            rate_c = (
                spec.flops_per_sm * kernel.efficiency * sms / kernel.flops
            ) * group.overhead_factor
        rate_m = float("inf")
        if kernel.bytes_moved > 0 and bwd > 0:
            rate_m = bw / kernel.bytes_moved
        rate = min(rate_c, rate_m)
        t.rate = 0.0 if rate == float("inf") else rate
        # Invalidate the group's cached state: its membership no longer
        # matches whatever the cache last saw.
        self._galloc.pop(group.gid, None)
        self._cur_sm_alloc = sms
        self._cur_bw_alloc = bw

    def _allocate_incremental(self, tasks: list[FluidTask]) -> None:
        """Memoised allocation: recompute only dirty groups.

        A group is *dirty* when its membership changed since the last
        allocation (tracked by the pool's :meth:`_on_membership` hook)
        or its SM budget or overhead factor moved; its bandwidth split
        is additionally redone when the group-level waterfill moved its
        share.  Clean
        groups keep the rates their tasks already carry.  Every reused
        float is the exact value a full recompute would produce, so the
        two paths are bit-identical (enforced by ``cross_check`` and the
        property tests).
        """
        spec = self.spec
        resident = self._resident
        rgroups = self._rgroups
        dirty = self._dirty
        states = self._galloc
        # The full path's ordering contract: groups appear in order of
        # their first resident task.  tids are admission-monotonic and
        # each residency dict is in admission order, so its first key is
        # the group's earliest resident task — sorting by that tid
        # reproduces the first-occurrence order over ``tasks`` without
        # touching the task list.  The sorted list is cached; the
        # membership hook flags it stale when a group appears, vanishes,
        # or loses its first resident task.
        if self._order_stale:
            self._order = sorted([(next(iter(res)), gid)
                                  for gid, res in resident.items()])
            self._order_stale = False
            self._ostates_stale = True
        order = self._order

        n_fair = self._n_fair
        fair_share = spec.sms / n_fair if n_fair else 0.0
        pool_epoch = self.pool._epoch
        if pool_epoch != self._seen_epoch or n_fair != self._seen_n_fair:
            # External capacity change (poke bumps the epoch) or a moved
            # fair split: every group's budget/cap may have shifted, so
            # every group is stale this round.
            self._seen_epoch = pool_epoch
            self._seen_n_fair = n_fair
            stale = [gid for _, gid in order]
            full_round = True
        elif len(states) != len(resident):
            # A state object is missing (solo-path eviction): ``states``
            # is always a subset of ``resident``, so a length mismatch
            # means some resident group has no cached state.  Visit all.
            stale = [gid for _, gid in order]
            full_round = True
        else:
            # The membership hook marks every changed group dirty
            # (including vanished ones, filtered out here), so the dirty
            # set alone — usually one gid — names the stale groups.
            stale = [g for g in dirty if g in resident]
            full_round = False
        reused = len(order) - len(stale)

        for gid in stale:
            g = rgroups[gid]
            budget = fair_share if g.sm_policy == "fair" else float(g.sm_budget)
            st = states.get(gid)
            if (st is None or gid in dirty or st.budget != budget
                    or st.overhead != g.overhead_factor):
                if st is None:
                    self._ostates_stale = True
                st = self._recompute_group(st, resident[gid],
                                           budget, g.overhead_factor,
                                           self._grep[gid] == 0)
                states[gid] = st
                self.alloc_group_recomputes += 1
            else:
                reused += 1
            cap = g.effective_bw_cap
            if g.sm_policy == "fair":
                cap = min(cap, spec.bandwidth / max(1, n_fair))
            st.gcap = cap
            st.gdemand = min(st.bw_demand_sum, cap)
        self.alloc_group_reuses += reused
        dirty.clear()

        if self._ostates_stale:
            self._ostates = [states[gid] for _, gid in order]
            self._ostates_stale = False
        ostates = self._ostates

        # Group-level waterfill always reruns: any group's demand change
        # moves the shared water level.  O(#groups), not O(#tasks).
        # The demand sum accumulates in first-task group order — the
        # same sequence of adds the full path's dict-ordered sum runs.
        # Uncontended fast path: when the demand sum sits safely below
        # the budget the waterfill provably hands every group exactly
        # its (already cap-limited) demand.  "Safely" needs a relative
        # margin: at the exact boundary the waterfill's running
        # ``remaining`` subtraction drifts by ulps and the last keys
        # can receive the drifted remainder instead of their demand.
        demand_sum = 0.0
        for st in ostates:
            demand_sum += st.gdemand
        contended = not _fits(demand_sum, spec.bandwidth)
        if contended:
            # The waterfill iterates its demand dict; build both inputs
            # in the contract (first-task) order.
            group_share = _waterfill(
                {gid: states[gid].gdemand for _, gid in order},
                {gid: states[gid].gcap for _, gid in order},
                spec.bandwidth)
        else:
            group_share = None

        # While consecutive passes stay uncontended every clean group's
        # share equals its (unchanged) demand and its rates are already
        # exact, so only the stale groups need the rates pass.  Any
        # contended pass — or the first uncontended one after it — can
        # move a clean group's share, so those visit every group.
        if contended or self._was_contended or full_round:
            visit = [gid for _, gid in order]
        else:
            visit = stale
        self._was_contended = contended

        inf = float("inf")
        for gid in visit:
            st = states[gid]
            gs = group_share[gid] if group_share is not None else st.gdemand
            if st.share is not None and st.share == gs:
                continue  # same split as last time: rates already exact
            bwd_list = st.bwd_list
            n_group = len(bwd_list)
            if n_group >= _VEC_MIN_GROUP:
                self._group_rates_vec(st, gs, rgroups[gid].overhead_factor,
                                      resident[gid])
                continue
            # Same fast path within the group: a demand sum safely
            # below the group share means every task gets its full
            # demand.  (When bandwidth is uncontended gs *equals* the
            # demand sum, so this intentionally falls through to the
            # exact loop — equality is inside the drift margin.)
            if _fits(st.bw_demand_sum, gs):
                bw_list = bwd_list[:]
            else:
                bw_list = _waterfill_uniform_list(bwd_list, gs)
            st.bw_list = bw_list
            st.share = gs
            overhead = rgroups[gid].overhead_factor
            bw_sum = 0.0
            # kinfo and the allocation columns mirror the residency dict
            # (all append on admit and evict on departure), so the five
            # sequences iterate in lockstep — no per-task dict lookups.
            for t, (bytes_moved, flops, sm_rate), smv, bw, bwdv in zip(
                    resident[gid].values(), st.kinfo.values(),
                    st.sm_list, bw_list, bwd_list):
                bw_sum += bw
                rate_c = inf
                if flops > 0:
                    rate_c = (sm_rate * smv / flops) * overhead
                rate_m = inf
                if bytes_moved > 0 and bwdv > 0:
                    rate_m = bw / bytes_moved
                rate = rate_c if rate_c < rate_m else rate_m
                t.rate = 0.0 if rate == inf else rate
            st.bw_sum = bw_sum

        # Device totals: sum the per-group subtotals in group order —
        # the same grouping and order the full path uses — so a clean
        # group costs O(1) here instead of an O(#tasks) re-walk.
        total_sm = 0.0
        total_bw = 0.0
        for st in ostates:
            total_sm += st.sm_sum
            total_bw += st.bw_sum
        self._cur_sm_alloc = total_sm
        self._cur_bw_alloc = total_bw

    def _group_rates_vec(self, st: _GroupAllocState, gs: float,
                         overhead: float, res: dict) -> None:
        """Vectorized within-group bandwidth split + rates (large groups).

        Bit-identical to the scalar loop in ``_allocate_incremental``:
        the waterfill's ``remaining`` sequence is reproduced with
        ``np.subtract.accumulate`` (sequential, same order), the rate
        math is the same elementwise operations with the same operand
        grouping, and the ``bw_sum`` subtotal accumulates left-to-right
        via ``np.add.accumulate``.  Only worth the ufunc dispatch
        overhead above ``_VEC_MIN_GROUP`` resident tasks (e.g. MPS
        groups with hundreds of streams); small groups take the scalar
        loop.
        """
        bwd = np.asarray(st.bwd_list, dtype=np.float64)
        if _fits(st.bw_demand_sum, gs):
            bwa = bwd.copy()
        else:
            bwa = _waterfill_uniform_arr(bwd, gs)
        st.bw_list = bwa.tolist()
        st.share = gs
        ki = np.array(list(st.kinfo.values()), dtype=np.float64)
        bytes_a = ki[:, 0]
        flops_a = ki[:, 1]
        smrate_a = ki[:, 2]
        sm = np.asarray(st.sm_list, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            rate_c = ((smrate_a * sm) / flops_a) * overhead
            rate_m = bwa / bytes_a
        rate_c = np.where(flops_a > 0, rate_c, np.inf)
        rate_m = np.where((bytes_a > 0) & (bwd > 0), rate_m, np.inf)
        rate = np.minimum(rate_c, rate_m)
        rate[np.isinf(rate)] = 0.0
        # kinfo mirrors the residency dict, so rows align with tasks.
        for t, r in zip(res.values(), rate.tolist()):
            t.rate = r
        st.bw_sum = float(np.add.accumulate(bwa)[-1]) if len(bwa) else 0.0

    def _recompute_group(self, st: Optional[_GroupAllocState],
                         group_res: dict, budget: float,
                         overhead: float,
                         no_repeats: bool) -> _GroupAllocState:
        """Full SM/demand recompute for one (dirty) group.

        ``group_res`` is the group's residency dict (tid → task) in
        admission order.  Per-task SM demands and kernel constants
        persist across recomputes (both depend only on the task and the
        budget; a budget change clears them and the membership hook
        evicts departed tasks), so a membership change costs one pass of
        plain float arithmetic over the group instead of a rebuild of
        every intermediate.  The state object itself is reused in place
        so caches holding a reference stay valid.
        """
        spec = self.spec
        if st is None:
            st = _GroupAllocState()
        elif st.budget != budget:
            # The cached demands depend on the budget: drop them (the
            # kernel constants don't, but keeping the two dicts in
            # lockstep keeps the ordered-iteration contract trivial).
            st.demands.clear()
            st.kinfo.clear()
        st.budget = budget
        st.overhead = overhead
        st.share = None  # membership changed: the rates pass must rerun
        demands = st.demands
        kinfo = st.kinfo
        group_tasks = group_res.values()
        if len(demands) != len(group_res):
            # Both caches are subsets of the residency dict (the hook
            # pops departures), so equal lengths mean every resident
            # task is cached and the fill pass can be skipped.
            for t in group_tasks:
                tid = t.tid
                if tid not in demands:
                    client: GpuClient = t.meta["client"]
                    kernel: Kernel = t.meta["kernel"]
                    demands[tid] = float(min(kernel.max_sms, client.sm_cap,
                                             budget))
                    # (bytes_moved, flops, flops_per_sm * efficiency):
                    # the cached product has the exact operand grouping
                    # the full path uses, so reuse stays bit-identical.
                    kinfo[tid] = (kernel.bytes_moved, kernel.flops,
                                  spec.flops_per_sm * kernel.efficiency)
        if no_repeats:
            # Every client has at most one resident task here, so each
            # aggregate equals the single demand, which is already
            # capped by ``sm_cap`` — the shrink below cannot fire.
            work = demands
        else:
            # The MPS percentage caps a *client's aggregate* SM usage,
            # not each kernel: several concurrent streams from one
            # capped client must share the client's slice.  Shrink a
            # copy — the cache keeps the pre-shrink demands.
            work = dict(demands)
            by_client: dict[int, list[FluidTask]] = {}
            for t in group_tasks:
                by_client.setdefault(id(t.meta["client"]), []).append(t)
            for client_tasks in by_client.values():
                cap = float(client_tasks[0].meta["client"].sm_cap)
                subtotal = sum(work[t.tid] for t in client_tasks)
                if subtotal > cap:
                    shrink = cap / subtotal
                    for t in client_tasks:
                        work[t.tid] *= shrink
        n = len(work)
        if n >= _VEC_MIN_GROUP:
            # Vectorized tail for large groups.  Sums run through
            # np.add.accumulate — a strictly sequential left-to-right
            # sum, so each is the same float as the scalar running sum
            # (numpy's pairwise np.sum would not be); products and
            # divisions are elementwise with the scalar path's exact
            # operand grouping.
            w = np.fromiter(work.values(), np.float64, n)
            total = float(np.add.accumulate(w)[-1])
            scale = min(1.0, budget / total) if total > 0 else 0.0
            sm = w * scale
            st.sm_list = sm.tolist()
            st.sm_sum = float(np.add.accumulate(sm)[-1])
            ki = np.array(list(kinfo.values()), dtype=np.float64)
            bytes_a = ki[:, 0]
            flops_a = ki[:, 1]
            smrate_a = ki[:, 2]
            with np.errstate(divide="ignore", invalid="ignore"):
                v = bytes_a * ((smrate_a * sm) / flops_a)
            v = np.where(flops_a > 0, v, np.inf)
            v = np.where(bytes_a == 0, 0.0, v)
            st.bwd_list = v.tolist()
            # Adding the zero entries the scalar loop skips is exact:
            # x + 0.0 == x for the non-negative accumulator.
            st.bw_demand_sum = float(np.add.accumulate(v)[-1])
            return st
        total = sum(work.values())
        scale = min(1.0, budget / total) if total > 0 else 0.0
        # One fused pass computes both columns: the SM share and the
        # bandwidth that keeps memory off the critical path given that
        # share (compute-rate-matched demand).  The two running sums are
        # independent accumulators, so interleaving them preserves each
        # scalar addition sequence exactly.  Skipping the zero entries
        # in the demand sum is exact: adding 0.0 never changes a
        # non-negative accumulator.  kinfo and work share insertion
        # order (both track residency), so zipping keeps the pairing.
        sm_list: list[float] = []
        sm_append = sm_list.append
        bwd_list: list[float] = []
        bwd_append = bwd_list.append
        sm_sum = 0.0
        bsum = 0.0
        inf = float("inf")
        for d, (bytes_moved, flops, sm_rate) in zip(work.values(),
                                                    kinfo.values()):
            smv = d * scale
            sm_append(smv)
            sm_sum += smv
            if bytes_moved == 0:
                bwd_append(0.0)
                continue
            if flops > 0:
                v = bytes_moved * (sm_rate * smv / flops)
            else:
                v = inf
            bwd_append(v)
            bsum += v
        st.sm_list = sm_list
        st.sm_sum = sm_sum
        st.bwd_list = bwd_list
        st.bw_demand_sum = bsum
        return st

    def _compute_full(self, tasks: list[FluidTask]):
        """The original one-shot allocation (reference implementation).

        Pure: returns ``(sm_alloc, bw_alloc, rates, total_sm, total_bw)``
        without touching task or device state, so it can serve both as
        the ``incremental=False`` engine and as the cross-check oracle.
        """
        spec = self.spec

        by_group: dict[int, list[FluidTask]] = {}
        group_of: dict[int, ShareGroup] = {}
        for t in tasks:
            g = t.meta["client"].group
            by_group.setdefault(g.gid, []).append(t)
            group_of[g.gid] = g

        # SM budgets: "fair" groups (vGPU VMs) split the device evenly.
        fair_groups = [gid for gid, g in group_of.items() if g.sm_policy == "fair"]
        fair_share = spec.sms / len(fair_groups) if fair_groups else 0.0

        sm_alloc: dict[int, float] = {}
        bw_demand: dict[int, float] = {}
        bw_group_cap: dict[int, float] = {}

        for gid, group_tasks in by_group.items():
            group = group_of[gid]
            budget = fair_share if group.sm_policy == "fair" else float(group.sm_budget)
            demands = {}
            by_client: dict[int, list[FluidTask]] = {}
            for t in group_tasks:
                client: GpuClient = t.meta["client"]
                kernel: Kernel = t.meta["kernel"]
                demands[t.tid] = float(min(kernel.max_sms, client.sm_cap, budget))
                by_client.setdefault(id(client), []).append(t)
            for client_tasks in by_client.values():
                cap = float(client_tasks[0].meta["client"].sm_cap)
                subtotal = sum(demands[t.tid] for t in client_tasks)
                if subtotal > cap:
                    shrink = cap / subtotal
                    for t in client_tasks:
                        demands[t.tid] *= shrink
            total = sum(demands.values())
            scale = min(1.0, budget / total) if total > 0 else 0.0
            for t in group_tasks:
                sm_alloc[t.tid] = demands[t.tid] * scale

            cap = group.effective_bw_cap
            if group.sm_policy == "fair":
                cap = min(cap, spec.bandwidth / max(1, len(fair_groups)))
            bw_group_cap[gid] = cap

            for t in group_tasks:
                kernel = t.meta["kernel"]
                if kernel.bytes_moved == 0:
                    bw_demand[t.tid] = 0.0
                    continue
                if kernel.flops > 0:
                    compute_rate = (
                        spec.flops_per_sm * kernel.efficiency * sm_alloc[t.tid]
                        / kernel.flops
                    )
                    bw_demand[t.tid] = kernel.bytes_moved * compute_rate
                else:
                    bw_demand[t.tid] = float("inf")

        bw_alloc = _hierarchical_waterfill(
            by_group, bw_demand, bw_group_cap, spec.bandwidth
        )

        rates: dict[int, float] = {}
        for t in tasks:
            kernel = t.meta["kernel"]
            group = t.meta["client"].group
            sms = sm_alloc[t.tid]
            bw = bw_alloc[t.tid]
            rate_c = float("inf")
            if kernel.flops > 0:
                rate_c = (
                    spec.flops_per_sm * kernel.efficiency * sms / kernel.flops
                ) * group.overhead_factor
            rate_m = float("inf")
            if kernel.bytes_moved > 0 and bw_demand[t.tid] > 0:
                # A zero bandwidth *demand* (possible by underflow for
                # kernels moving a handful of bytes) means memory can
                # never be this kernel's bottleneck — leave it unthrottled
                # rather than dividing a zero allocation.
                rate_m = bw / kernel.bytes_moved
            rate = min(rate_c, rate_m)
            rates[t.tid] = 0.0 if rate == float("inf") else rate

        # Totals as per-group subtotals summed in group order — the
        # exact grouping the incremental path caches, so the two paths
        # produce bit-identical utilisation integrals.
        total_sm = 0.0
        total_bw = 0.0
        for ts in by_group.values():
            gsm = 0.0
            gbw = 0.0
            for t in ts:
                gsm += sm_alloc[t.tid]
                gbw += bw_alloc[t.tid]
            total_sm += gsm
            total_bw += gbw

        return sm_alloc, bw_alloc, rates, total_sm, total_bw

    def _verify_against_full(self, tasks: list[FluidTask]) -> None:
        """Cross-check: assert the incremental result equals the oracle."""
        sm_alloc, bw_alloc, rates, total_sm, total_bw = \
            self._compute_full(tasks)
        for t in tasks:
            if t.rate != rates[t.tid]:
                raise AllocatorMismatch(
                    f"{self.name}: rate mismatch for task {t.tid}: "
                    f"incremental {t.rate!r} != full {rates[t.tid]!r}"
                )
        if (self._cur_sm_alloc != total_sm
                or self._cur_bw_alloc != total_bw):
            raise AllocatorMismatch(
                f"{self.name}: utilisation totals diverged: "
                f"sm {self._cur_sm_alloc!r} != {total_sm!r} or "
                f"bw {self._cur_bw_alloc!r} != {total_bw!r}"
            )
        for gid, res in self._resident.items():
            st = self._galloc.get(gid)
            if st is None:
                continue  # solo path keeps no per-group state
            # Allocation columns are positional in residency order.
            for i, t in enumerate(res.values()):
                if (st.sm_list[i] != sm_alloc[t.tid]
                        or st.bw_list[i] != bw_alloc[t.tid]):
                    raise AllocatorMismatch(
                        f"{self.name}: cached allocation mismatch for task "
                        f"{t.tid}: sm {st.sm_list[i]!r} != "
                        f"{sm_alloc[t.tid]!r} or bw {st.bw_list[i]!r} != "
                        f"{bw_alloc[t.tid]!r}"
                    )


def _hierarchical_waterfill(
    by_group: dict[int, list[FluidTask]],
    demand: dict[int, float],
    group_cap: dict[int, float],
    total_bw: float,
) -> dict[int, float]:
    """Water-fill ``total_bw`` over tasks honouring per-group hard caps.

    Phase 1 fixes each group's aggregate share: groups whose demand is below
    both their cap and the fair share are fully satisfied, and the surplus
    is re-filled over the rest.  Phase 2 water-fills within each group.
    """
    group_demand = {
        gid: min(sum(demand[t.tid] for t in ts), group_cap[gid])
        for gid, ts in by_group.items()
    }
    group_share = _waterfill(group_demand, group_cap, total_bw)

    alloc: dict[int, float] = {}
    for gid, ts in by_group.items():
        task_demand = {t.tid: demand[t.tid] for t in ts}
        task_cap = {t.tid: group_share[gid] for t in ts}
        alloc.update(_waterfill(task_demand, task_cap, group_share[gid]))
    return alloc


def _fits(demand_sum: float, total: float) -> bool:
    """True when water-filling ``demand_sum`` into ``total`` provably
    gives every key its full (cap-limited) demand.

    Requires the sum to sit below the budget by a relative margin that
    dominates the waterfill loop's worst-case ``remaining`` rounding
    drift (~n ulps, versus the 1e-9 margin here); exactly at the
    boundary the loop's drifted remainder can differ from the demand
    in the last ulps, so equality must take the slow exact path.
    """
    return total - demand_sum > total * 1e-9


def _waterfill_uniform_arr(demand: "np.ndarray", total: float) -> "np.ndarray":
    """:func:`_waterfill_uniform` over a demand *array* (large groups).

    Bit-identical: the clamp is an elementwise ``min``, the per-pass
    share and the all-unsatisfied collapse use the same scalar floats,
    and the running ``remaining`` is reproduced by a sequential
    ``np.subtract.accumulate`` over the satisfied demands in index
    order — the exact subtraction sequence of the scalar loop.
    """
    m = np.minimum(demand, total)
    alloc = np.zeros_like(m)
    active = m > 0.0
    remaining = total
    while remaining > 0.0:
        nact = int(np.count_nonzero(active))
        if nact == 0:
            break
        share = remaining / nact
        unsat = active & (m > share)
        nunsat = int(np.count_nonzero(unsat))
        if nunsat == nact:
            alloc[active] = total if total < share else share
            return alloc
        sat = active & ~unsat
        ms = m[sat]
        alloc[sat] = ms
        remaining = float(np.subtract.accumulate(
            np.concatenate(((remaining,), ms)))[-1])
        active = unsat
    return alloc


def _waterfill_uniform_list(demand: list, total: float) -> list:
    """:func:`_waterfill` with every per-key cap equal to ``total``,
    over a positional demand column.

    The incremental allocator's within-group split always caps each
    task at the group share, so the cap dict collapses to a scalar —
    the arithmetic below mirrors :func:`_waterfill` term for term and
    produces bit-identical allocations.  Pre-clamped ``(index, clamped)``
    pairs replace the per-pass ``min(demand[k], total)`` recomputation
    and dict lookups of the generic version.  Pair order is demand
    index order — the same order the generic loop visits dict keys — so
    the ``remaining`` subtraction sequence (and hence every rounded
    intermediate) is identical.
    """
    alloc = [0.0] * len(demand)
    active = [(i, d if d < total else total) for i, d in enumerate(demand)
              if (d if d < total else total) > 0]
    remaining = total
    # First-round saturation shortcut: when every active demand fits
    # under the first share, the loop below allocates each key exactly
    # its clamped demand in one pass and terminates — the ``remaining``
    # subtractions never feed back into any allocation, so returning
    # the clamped demands directly is bit-identical.  This is the
    # common case when the group share equals the demand sum.
    if active and total > 0.0:
        share0 = total / len(active)
        if max(m for _, m in active) <= share0:
            for i, m in active:
                alloc[i] = m
            return alloc
    while active and remaining > 0.0:
        share = remaining / len(active)
        # Single-pass partition: the generic loop's list comprehension
        # plus re-scan visit the same keys in the same order, so the
        # ``remaining`` subtraction sequence is unchanged.
        unsatisfied = []
        unsat_append = unsatisfied.append
        satisfied = []
        sat_append = satisfied.append
        for im in active:
            if im[1] > share:
                unsat_append(im)
            else:
                sat_append(im)
        if not satisfied:
            final = total if total < share else share
            for i, _ in active:
                alloc[i] = final
            return alloc
        for i, m in satisfied:
            alloc[i] = m
            remaining -= m
        active = unsatisfied
    return alloc


def _waterfill(demand: dict, cap: dict, total: float) -> dict:
    """Classic water-filling: satisfy small demands, split the rest fairly.

    The loop terminates in at most ``len(demand)`` iterations: every pass
    either fully satisfies at least one client (removing it) or returns.
    The remaining-budget test is exact on purpose — an absolute epsilon
    here would zero out legitimately tiny allocations (e.g. a kernel
    moving a few bytes) and stall its fluid task forever.
    """
    alloc = {k: 0.0 for k in demand}
    active = [k for k in demand if min(demand[k], cap[k]) > 0]
    remaining = total
    while active and remaining > 0.0:
        share = remaining / len(active)
        satisfied = [k for k in active if min(demand[k], cap[k]) <= share]
        if not satisfied:
            for k in active:
                alloc[k] = min(cap[k], share)
            return alloc
        for k in satisfied:
            alloc[k] = min(demand[k], cap[k])
            remaining -= alloc[k]
        active = [k for k in active if k not in set(satisfied)]
    return alloc
