"""GPU device catalog and MIG profile tables.

Numbers are the published datasheet values the paper itself quotes (A100:
108 SMs, 19.5 fp32 TFLOPs; MI210: 104 CUs, 22.6 TFLOPs).  MIG slice
fractions follow the NVIDIA MIG user guide: an A100 exposes 7 compute
slices and 8 memory slices, so e.g. ``1g.5gb`` owns 1/7 of the SMs but 1/8
of the DRAM bandwidth and capacity — an asymmetry the evaluation leans on
(MPS can hand a client 1/4 of the GPU where MIG can only hand out 1/7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "GPUSpec",
    "MIGProfile",
    "A100_40GB",
    "A100_80GB",
    "H100_80GB",
    "V100_32GB",
    "MI210",
    "get_spec",
    "GiB",
]

#: Bytes per gibibyte; memory sizes below use GB = 1e9 to match datasheets.
GiB = 1024 ** 3
GB = 1e9


@dataclass(frozen=True)
class MIGProfile:
    """One row of a device's MIG profile table.

    Attributes
    ----------
    name:
        Profile string, e.g. ``"2g.10gb"``.
    compute_slices:
        Number of GPU-compute slices (out of ``GPUSpec.mig_compute_slices``).
    memory_slices:
        Number of memory slices (out of ``GPUSpec.mig_memory_slices``);
        governs both capacity *and* bandwidth share.
    memory_bytes:
        DRAM capacity of an instance with this profile.
    """

    name: str
    compute_slices: int
    memory_slices: int
    memory_bytes: float

    def sm_count(self, spec: "GPUSpec") -> int:
        """SMs owned by one instance of this profile on ``spec``."""
        per_slice = spec.mig_usable_sms // spec.mig_compute_slices
        return per_slice * self.compute_slices

    def bandwidth(self, spec: "GPUSpec") -> float:
        """DRAM bandwidth (bytes/s) owned by one instance on ``spec``."""
        return spec.bandwidth * self.memory_slices / spec.mig_memory_slices


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU model."""

    name: str
    #: Streaming multiprocessors (NVIDIA) or compute units (AMD).
    sms: int
    #: Peak fp32 throughput, FLOP/s.
    fp32_flops: float
    #: DRAM capacity, bytes.
    memory_bytes: float
    #: DRAM bandwidth, bytes/s.
    bandwidth: float
    #: Whether the device supports MIG partitioning.
    mig_capable: bool = False
    #: Compute slices exposed in MIG mode (7 on A100/H100).
    mig_compute_slices: int = 7
    #: Memory slices exposed in MIG mode (8 on A100/H100).
    mig_memory_slices: int = 8
    #: SMs usable in MIG mode (98 of 108 on A100: 7 slices x 14 SMs).
    mig_usable_sms: int = 0
    #: MIG profile table (empty when not MIG-capable).
    mig_profiles: tuple[MIGProfile, ...] = ()
    #: Interconnect bandwidth for multi-GPU model parallelism, bytes/s.
    nvlink_bandwidth: float = 600 * GB
    #: Cost of a full GPU reset (required to enter/exit/repartition MIG), s.
    reset_seconds: float = 1.5
    #: Per-kernel-launch host-side overhead, s.
    launch_overhead: float = 5e-6
    #: Context-switch penalty between time-shared clients, s.  Default
    #: time-slicing swaps the full CUDA context between clients; measured
    #: costs are single-digit milliseconds, which is what makes it lose
    #: to spatial sharing in Figs. 4/5.
    timeslice_switch_seconds: float = 5e-3
    #: Time-slicing quantum, s: once a context is resident, its queued
    #: kernels keep running until the quantum expires (so workloads with
    #: many tiny kernels are not charged a context switch per kernel).
    timeslice_quantum_seconds: float = 2e-3

    @property
    def flops_per_sm(self) -> float:
        """Peak fp32 FLOP/s contributed by one SM."""
        return self.fp32_flops / self.sms

    def profile(self, name: str) -> MIGProfile:
        """Look up a MIG profile by name (raises ``KeyError`` if absent)."""
        for prof in self.mig_profiles:
            if prof.name == name:
                return prof
        raise KeyError(f"{self.name} has no MIG profile {name!r}")


def _a100_profiles(mem_gb: int) -> tuple[MIGProfile, ...]:
    """A100 MIG profile grid; ``mem_gb`` is 40 or 80.

    Includes the double-memory ``1g.{2u}gb`` profile (1 compute slice, 2
    memory slices, at most 4 instances) that NVIDIA added for exactly the
    workload the paper runs: models whose weights outgrow a single memory
    slice but need only 1/7 of the compute.
    """
    unit = mem_gb // 8
    return (
        MIGProfile(f"1g.{unit}gb", 1, 1, unit * GB),
        MIGProfile(f"1g.{2 * unit}gb", 1, 2, 2 * unit * GB),
        MIGProfile(f"2g.{2 * unit}gb", 2, 2, 2 * unit * GB),
        MIGProfile(f"3g.{4 * unit}gb", 3, 4, 4 * unit * GB),
        MIGProfile(f"4g.{4 * unit}gb", 4, 4, 4 * unit * GB),
        MIGProfile(f"7g.{8 * unit}gb", 7, 8, 8 * unit * GB),
    )


A100_40GB = GPUSpec(
    name="A100-SXM4-40GB",
    sms=108,
    fp32_flops=19.5e12,
    memory_bytes=40 * GB,
    bandwidth=1555 * GB,
    mig_capable=True,
    mig_usable_sms=98,
    mig_profiles=_a100_profiles(40),
)

A100_80GB = GPUSpec(
    name="A100-SXM4-80GB",
    sms=108,
    fp32_flops=19.5e12,
    memory_bytes=80 * GB,
    bandwidth=2039 * GB,
    mig_capable=True,
    mig_usable_sms=98,
    mig_profiles=_a100_profiles(80),
)

H100_80GB = GPUSpec(
    name="H100-SXM5-80GB",
    sms=132,
    fp32_flops=67e12,
    memory_bytes=80 * GB,
    bandwidth=3350 * GB,
    mig_capable=True,
    mig_usable_sms=126,
    mig_compute_slices=7,
    mig_memory_slices=8,
    mig_profiles=(
        MIGProfile("1g.10gb", 1, 1, 10 * GB),
        MIGProfile("1g.20gb", 1, 2, 20 * GB),
        MIGProfile("2g.20gb", 2, 2, 20 * GB),
        MIGProfile("3g.40gb", 3, 4, 40 * GB),
        MIGProfile("4g.40gb", 4, 4, 40 * GB),
        MIGProfile("7g.80gb", 7, 8, 80 * GB),
    ),
)

V100_32GB = GPUSpec(
    name="V100-SXM2-32GB",
    sms=80,
    fp32_flops=15.7e12,
    memory_bytes=32 * GB,
    bandwidth=900 * GB,
    mig_capable=False,
)

MI210 = GPUSpec(
    name="AMD-MI210",
    sms=104,  # compute units
    fp32_flops=22.6e12,
    memory_bytes=64 * GB,
    bandwidth=1638 * GB,
    mig_capable=False,  # AMD offers CU masking instead (Table 1)
)

_CATALOG = {s.name: s for s in (A100_40GB, A100_80GB, H100_80GB, V100_32GB, MI210)}


def get_spec(name: str) -> GPUSpec:
    """Return the catalog spec called ``name`` (see module constants)."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown GPU {name!r}; known: {sorted(_CATALOG)}"
        ) from None
