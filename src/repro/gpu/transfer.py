"""Host→device transfer engine: the contended half of model loading.

§6 measures LLaMa-2 13B taking ~10 s to load.  That load is not free to
parallelise: concurrent function cold starts on the same node share the
host's storage + PCIe path.  The engine models that shared path as a
fluid pool — one in-flight load proceeds at full calibrated speed, *k*
concurrent loads each proceed at 1/k — which is what turns a "warm pool
of 4 replicas" startup into 4x the single-replica load time.

Transfers are expressed in *exclusive seconds* (how long the copy takes
alone) so workload models keep their calibrated load times regardless of
the engine's nominal bandwidth.
"""

from __future__ import annotations

from repro.sim.core import Environment, Event
from repro.sim.fluid import FluidPool, FluidTask

__all__ = ["TransferEngine"]


class TransferEngine:
    """A shared, equal-split host→device copy path."""

    def __init__(self, env: Environment, name: str = "pcie"):
        self.env = env
        self.name = name
        self.pool = FluidPool(env, self._equal_split, name=f"{name}-pool")
        self.transfers_completed = 0
        self.busy_seconds = 0.0
        self._last_change = env.now

    def _equal_split(self, tasks: list[FluidTask]) -> None:
        share = 1.0 / len(tasks)
        for t in tasks:
            t.rate = share

    def copy(self, exclusive_seconds: float) -> Event:
        """Start a transfer that would take ``exclusive_seconds`` alone.

        Returns the completion event.  Concurrent transfers stretch each
        other proportionally (equal split of the path).
        """
        if exclusive_seconds < 0:
            raise ValueError("exclusive_seconds must be non-negative")
        task = FluidTask(self.env, work=exclusive_seconds,
                         meta={"kind": "h2d"})
        task.done.callbacks.append(self._on_done)
        self.pool.add(task)
        return task.done

    def _on_done(self, _ev: Event) -> None:
        self.transfers_completed += 1

    @property
    def in_flight(self) -> int:
        return len(self.pool)
