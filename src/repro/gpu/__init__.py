"""Simulated-GPU substrate.

The paper's testbed is two NVIDIA A100s partitioned with CUDA MPS and MIG.
This package replaces that hardware with a calibrated fluid discrete-event
model (see DESIGN.md §5):

- :mod:`repro.gpu.specs` — device catalog (A100/H100/V100/MI210) and MIG
  profile tables.
- :mod:`repro.gpu.kernel` — kernels as (flops, bytes, max-SMs) work items.
- :mod:`repro.gpu.device` — the roofline fluid engine: SM allocation plus
  water-filled memory-bandwidth sharing.
- :mod:`repro.gpu.memory` — HBM allocator with OOM semantics.
- :mod:`repro.gpu.timeshare` / :mod:`~repro.gpu.mps` / :mod:`~repro.gpu.mig`
  / :mod:`~repro.gpu.vgpu` — the multiplexing techniques of Table 1.
- :mod:`repro.gpu.monitor` — an ``nvidia-smi``-style utilization sampler.
"""

from repro.gpu.specs import (
    A100_40GB,
    A100_80GB,
    H100_80GB,
    MI210,
    V100_32GB,
    GPUSpec,
    MIGProfile,
    get_spec,
)
from repro.gpu.kernel import Kernel, KernelGroup
from repro.gpu.memory import GpuOutOfMemory, MemoryPool
from repro.gpu.device import GpuClient, ShareGroup, SimulatedGPU
from repro.gpu.faults import (
    FaultDomain,
    GpuEccError,
    GpuLaunchError,
    domain_of,
    fault_domains,
    kill_domain,
)
from repro.gpu.modes import MultiplexMode, mode_capabilities
from repro.gpu.mps import MpsControlDaemon
from repro.gpu.mig import MigInstance, MigManager
from repro.gpu.vgpu import VgpuManager, VirtualMachine
from repro.gpu.monitor import GpuMonitor
from repro.gpu.transfer import TransferEngine
from repro.gpu.cumask import CuMaskManager
from repro.gpu.streams import CudaEvent, CudaStream

__all__ = [
    "A100_40GB",
    "A100_80GB",
    "CuMaskManager",
    "CudaEvent",
    "CudaStream",
    "FaultDomain",
    "GPUSpec",
    "GpuClient",
    "GpuEccError",
    "GpuLaunchError",
    "GpuMonitor",
    "GpuOutOfMemory",
    "H100_80GB",
    "Kernel",
    "KernelGroup",
    "MI210",
    "MIGProfile",
    "MemoryPool",
    "MigInstance",
    "MigManager",
    "MpsControlDaemon",
    "MultiplexMode",
    "ShareGroup",
    "SimulatedGPU",
    "TransferEngine",
    "V100_32GB",
    "VgpuManager",
    "VirtualMachine",
    "domain_of",
    "fault_domains",
    "get_spec",
    "kill_domain",
    "mode_capabilities",
]
