"""CUDA streams and events: ordered kernel queues per client.

Kernels launched on one stream execute in order; kernels on different
streams (of the same or different clients) may overlap, subject to the
client's SM cap — the standard CUDA concurrency model.  ``CudaEvent``
provides the cross-stream ``record`` / ``wait_event`` dependency
mechanism, enough to express the DAG-shaped inference/training pipelines
real frameworks emit.

Failure semantics mirror CUDA's sticky errors: once a kernel in a stream
fails (e.g. an injected ECC kill), every subsequently launched kernel on
that stream fails immediately with the same error.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.sim.core import Event
from repro.gpu.device import GpuClient
from repro.gpu.kernel import Kernel, KernelGroup

__all__ = ["CudaEvent", "CudaStream"]

_stream_ids = itertools.count()


class CudaStream:
    """An ordered kernel queue on one GPU client."""

    def __init__(self, client: GpuClient, name: str | None = None):
        self.client = client
        self.env = client.device.env
        self.name = name or f"stream{next(_stream_ids)}"
        # The tail: fires when all work launched so far has completed.
        tail = self.env.event(name=f"{self.name}-origin")
        tail._defused = True
        tail.succeed()
        self._tail: Event = tail
        self.kernels_launched = 0

    def launch(self, kernel: Kernel) -> Event:
        """Enqueue a kernel; returns its completion event.

        The kernel starts only after everything previously enqueued on
        this stream (including awaited events) has finished.
        """
        done = self.env.event(name=f"{self.name}-k{self.kernels_launched}")
        done._defused = True
        self.kernels_launched += 1
        prev = self._tail

        def start(trigger: Event) -> None:
            if not trigger.ok:
                done.fail(trigger.value)  # sticky stream error
                return
            completion = self.client.launch(kernel)
            completion._defused = True

            def finish(ev: Event) -> None:
                if ev.ok:
                    done.succeed(ev.value)
                else:
                    done.fail(ev.value)

            completion.callbacks.append(finish)

        if prev.processed:
            start(prev)
        else:
            prev.callbacks.append(start)
        self._tail = done
        return done

    def launch_group(self, group: KernelGroup) -> Event:
        """Enqueue every kernel of a group in order; returns the last's
        completion event."""
        last: Event | None = None
        for kernel in group:
            last = self.launch(kernel)
        assert last is not None  # groups are non-empty by construction
        return last

    def wait_event(self, event: Event) -> None:
        """Make all *subsequent* launches wait for ``event`` too."""
        combined = self.env.all_of([self._tail, event])
        combined._defused = True
        self._tail = combined

    def synchronize(self) -> Event:
        """An event firing once all currently enqueued work completes."""
        return self._tail

    def record_event(self) -> "CudaEvent":
        """Capture this stream's current position (cudaEventRecord)."""
        return CudaEvent(self._tail)


class CudaEvent:
    """A recorded stream position other streams can wait on."""

    def __init__(self, marker: Event):
        self._marker = marker

    @property
    def completed(self) -> bool:
        return self._marker.processed

    @property
    def event(self) -> Event:
        return self._marker

    def wait_into(self, stream: CudaStream) -> None:
        """Insert this event as a dependency of ``stream``'s future work."""
        stream.wait_event(self._marker)
