"""GPU kernels as roofline work items.

A :class:`Kernel` abstracts one device-side launch: how many floating-point
operations it performs, how many DRAM bytes it moves, and how many SMs it
can actually keep busy (``max_sms`` — small batch-1 inference kernels
cannot fill an A100, which is the entire premise of the paper's Fig. 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Kernel", "KernelGroup"]

_kernel_ids = itertools.count()


@dataclass
class Kernel:
    """One GPU kernel launch, in roofline terms.

    Parameters
    ----------
    flops:
        Floating point operations performed.
    bytes_moved:
        DRAM traffic in bytes (reads + writes).
    max_sms:
        Largest SM count the kernel's grid can exploit.  Duration stops
        improving once the allocated SMs exceed this (Fig. 2's plateau).
    efficiency:
        Fraction of per-SM peak FLOP/s the kernel sustains (default 0.5 —
        dense GEMMs do better, memory-irregular kernels worse).
    name:
        Label for traces.
    """

    flops: float
    bytes_moved: float
    max_sms: int
    efficiency: float = 0.5
    name: str = "kernel"
    kid: int = field(default_factory=lambda: next(_kernel_ids))

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0:
            raise ValueError("flops and bytes_moved must be non-negative")
        if self.flops == 0 and self.bytes_moved == 0:
            raise ValueError("kernel must do some work")
        if self.max_sms <= 0:
            raise ValueError("max_sms must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte; classifies compute- vs memory-bound."""
        if self.bytes_moved == 0:
            return float("inf")
        return self.flops / self.bytes_moved

    def duration(self, sms: int, flops_per_sm: float, bandwidth: float) -> float:
        """Ideal isolated runtime on ``sms`` SMs with ``bandwidth`` B/s.

        The roofline maximum of the compute time and the memory time; the
        fluid engine reproduces exactly this when the kernel runs alone.
        """
        if sms <= 0:
            raise ValueError("sms must be positive")
        usable = min(sms, self.max_sms)
        t_compute = self.flops / (flops_per_sm * self.efficiency * usable)
        t_memory = self.bytes_moved / bandwidth if bandwidth > 0 else float("inf")
        return max(t_compute, t_memory)

    def scaled(self, factor: float) -> "Kernel":
        """A copy with flops and bytes scaled by ``factor`` (batching)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return Kernel(
            flops=self.flops * factor,
            bytes_moved=self.bytes_moved * factor,
            max_sms=self.max_sms,
            efficiency=self.efficiency,
            name=self.name,
        )


@dataclass
class KernelGroup:
    """An ordered sequence of kernels launched back-to-back on one stream.

    Workload models emit groups (e.g. "one decode step") rather than
    thousands of individual layer kernels, keeping event counts tractable.
    A group can be *fused* into a single aggregate kernel for coarse
    simulations, which preserves total work but not per-kernel boundaries.
    """

    kernels: list[Kernel]
    name: str = "group"

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("a KernelGroup needs at least one kernel")

    def __iter__(self) -> Iterator[Kernel]:
        return iter(self.kernels)

    def __len__(self) -> int:
        return len(self.kernels)

    @property
    def total_flops(self) -> float:
        return sum(k.flops for k in self.kernels)

    @property
    def total_bytes(self) -> float:
        return sum(k.bytes_moved for k in self.kernels)

    def fused(self) -> Kernel:
        """Collapse into one kernel with work-weighted properties.

        ``max_sms`` and ``efficiency`` are averaged weighted by each
        kernel's FLOPs so the fused kernel's isolated duration approximates
        the sum of the members' durations.
        """
        flops = self.total_flops
        weights = [k.flops if flops > 0 else 1.0 for k in self.kernels]
        wsum = sum(weights)
        max_sms = max(
            1, round(sum(w * k.max_sms for w, k in zip(weights, self.kernels)) / wsum)
        )
        eff = sum(w * k.efficiency for w, k in zip(weights, self.kernels)) / wsum
        return Kernel(
            flops=flops,
            bytes_moved=self.total_bytes,
            max_sms=max_sms,
            efficiency=eff,
            name=f"fused({self.name})",
        )

    @classmethod
    def concat(cls, groups: Iterable["KernelGroup"], name: str = "concat"
               ) -> "KernelGroup":
        kernels: list[Kernel] = []
        for g in groups:
            kernels.extend(g.kernels)
        return cls(kernels=kernels, name=name)
