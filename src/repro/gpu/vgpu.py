"""NVIDIA vGPU model (Table 1's last row).

vGPU shares a device between *virtual machines*: memory is divided into
homogeneous slices, compute is time-sliced at VM granularity, and
reconfiguration requires restarting a VM.  We model the VM-level
time-slicing fluidly: every VM with runnable work receives an equal share
of the device's SM throughput (``sm_policy="fair"``), degraded by a
hypervisor scheduling overhead.  Within a VM, processes time-share the
virtual GPU exactly like they would a bare one.
"""

from __future__ import annotations

from repro.gpu.device import GpuClient, ShareGroup, SimulatedGPU
from repro.gpu.memory import MemoryPool

__all__ = ["VgpuManager", "VirtualMachine"]

#: Fraction of peak throughput a VM retains under hypervisor scheduling.
VGPU_SCHEDULING_EFFICIENCY = 0.93

#: Restarting a VM to change its vGPU profile (order: tens of seconds).
VM_RESTART_SECONDS = 30.0


class VirtualMachine:
    """One VM holding a homogeneous vGPU slice."""

    def __init__(self, manager: "VgpuManager", index: int):
        self.manager = manager
        self.index = index
        device = manager.device
        memory = MemoryPool(
            device.spec.memory_bytes / manager.num_vms,
            name=f"{device.name}-vm{index}-mem",
        )
        self.group = ShareGroup(
            name=f"{device.name}-vm{index}",
            device=device,
            sm_budget=device.spec.sms,
            bw_cap=None,
            memory=memory,
            discipline="temporal",  # processes inside a VM time-share
            sm_policy="fair",  # VMs split the device evenly when active
            overhead_factor=VGPU_SCHEDULING_EFFICIENCY,
        )
        device.add_group(self.group)

    def client(self, name: str) -> GpuClient:
        return GpuClient(self.manager.device, self.group, name)

    def restart(self):
        """Restart the VM (generator) — required to resize its slice."""
        if self.group.clients:
            raise RuntimeError(
                f"vm{self.index}: close {len(self.group.clients)} clients "
                "before restarting"
            )
        yield self.manager.device.env.timeout(VM_RESTART_SECONDS)


class VgpuManager:
    """Homogeneously slice a device among ``num_vms`` virtual machines.

    vGPU profiles are homogeneous by design (Table 1: "Homogeneous
    resource division"), so a single VM count fixes every slice.
    """

    def __init__(self, device: SimulatedGPU, num_vms: int):
        if num_vms <= 0:
            raise ValueError("num_vms must be positive")
        if device.default_group.clients:
            raise RuntimeError(
                f"{device.name}: cannot enable vGPU with active bare-metal "
                "clients"
            )
        self.device = device
        self.num_vms = num_vms
        self.vms = [VirtualMachine(self, i) for i in range(num_vms)]

    def vm(self, index: int) -> VirtualMachine:
        return self.vms[index]
