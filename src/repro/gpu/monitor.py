"""``nvidia-smi``-style periodic utilization sampling.

The monitor runs as a simulation process, waking every ``interval``
seconds to record the device's mean SM utilization since the previous
sample.  Fig. 3's "GPU idle between inference bursts" observation is
produced from these samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import SimulatedGPU

__all__ = ["GpuMonitor", "UtilizationSample"]


@dataclass(frozen=True)
class UtilizationSample:
    """Mean utilization over one sampling interval ending at ``time``."""

    time: float
    sm_utilization: float
    resident_kernels: int


class GpuMonitor:
    """Samples a device's utilization on a fixed interval."""

    def __init__(self, device: SimulatedGPU, interval: float = 1.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.device = device
        self.interval = interval
        self.samples: list[UtilizationSample] = []
        self._proc = device.env.process(self._sample_loop())

    def _sample_loop(self):
        device = self.device
        env = device.env
        last_sm_seconds = device.sm_seconds
        last_time = env.now
        while True:
            yield env.timeout(self.interval)
            device._integrate()
            dt = env.now - last_time
            busy = (device.sm_seconds - last_sm_seconds) / device.spec.sms
            self.samples.append(
                UtilizationSample(
                    time=env.now,
                    sm_utilization=busy / dt if dt > 0 else 0.0,
                    resident_kernels=len(device.pool),
                )
            )
            last_sm_seconds = device.sm_seconds
            last_time = env.now

    def stop(self) -> None:
        """Stop sampling (safe to call once)."""
        if self._proc.is_alive:
            self._proc.interrupt("monitor stopped")
            self._proc.defuse()

    @property
    def mean_utilization(self) -> float:
        """Average SM utilization across all samples so far."""
        if not self.samples:
            return 0.0
        return sum(s.sm_utilization for s in self.samples) / len(self.samples)

    def idle_fraction(self, threshold: float = 0.01) -> float:
        """Fraction of sampled intervals with utilization below threshold."""
        if not self.samples:
            return 1.0
        idle = sum(1 for s in self.samples if s.sm_utilization < threshold)
        return idle / len(self.samples)
