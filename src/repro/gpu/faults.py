"""Fault domains: the blast radius of a GPU hardware fault.

The paper's isolation table (Table 1) is also a *fault containment*
table: MIG gives each instance its own memory slices and ECC scope, so
an uncorrectable memory error (ECC/Xid 48-style) kills only the kernels
resident in the affected instance; MPS clients share one CUDA context
and one memory system, so the same fault kills every resident client —
the classic argument for MIG in multi-tenant serving (MISO, ParvaGPU).

This module makes that distinction explicit.  A :class:`FaultDomain` is
the set of share groups that fail together.  The partitioning rule
mirrors the memory model: every group backed by the *device* memory
pool (the default time-sliced context, device-wide MPS) shares one
domain; every group with its own :class:`~repro.gpu.memory.MemoryPool`
(a MIG instance, a vGPU VM's framebuffer slice) is its own
hardware-isolated domain.  Injection helpers in
:mod:`repro.faas.failures` route every kill through the owning domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gpu.device import ShareGroup, SimulatedGPU

__all__ = [
    "FaultDomain",
    "GpuEccError",
    "GpuLaunchError",
    "domain_of",
    "fault_domains",
    "kill_domain",
]


class GpuEccError(RuntimeError):
    """An uncorrectable GPU memory error killed the resident kernels."""


class GpuLaunchError(RuntimeError):
    """A kernel launch failed transiently (driver hiccup, Xid 13/31).

    Unlike :class:`GpuEccError` this kills nothing already resident —
    the launch itself is rejected, and an immediate relaunch may
    succeed.  The serving plane maps it to a retryable attempt failure.
    """


@dataclass(frozen=True)
class FaultDomain:
    """A set of share groups that one hardware fault takes down together."""

    name: str
    device: SimulatedGPU
    groups: tuple[ShareGroup, ...]
    #: True when the domain is one hardware-isolated partition (MIG
    #: instance / vGPU slice) rather than the shared device context.
    hardware_isolated: bool

    def __contains__(self, group: ShareGroup) -> bool:
        return any(g is group for g in self.groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "isolated" if self.hardware_isolated else "shared"
        return (f"<FaultDomain {self.name!r} {kind} "
                f"groups={[g.name for g in self.groups]}>")


def fault_domains(device: SimulatedGPU) -> list[FaultDomain]:
    """The device's fault domains, shared domain first.

    Groups backed by the device memory pool fail together (one shared
    context, one ECC scope); each group with its own pool is its own
    domain.  Order is deterministic: the shared domain, then isolated
    groups in ``device.groups`` order — so seeded fault processes pick
    the same victim every run.
    """
    shared = tuple(g for g in device.groups if g.memory is device.memory)
    domains = [FaultDomain(name=f"{device.name}-shared", device=device,
                           groups=shared, hardware_isolated=False)]
    for group in device.groups:
        if group.memory is not device.memory:
            domains.append(FaultDomain(name=group.name, device=device,
                                       groups=(group,),
                                       hardware_isolated=True))
    return domains


def domain_of(device: SimulatedGPU, group: ShareGroup) -> FaultDomain:
    """The fault domain that contains ``group``."""
    for domain in fault_domains(device):
        if group in domain:
            return domain
    raise ValueError(
        f"group {group.name!r} is not attached to device {device.name!r}"
    )


def kill_domain(device: SimulatedGPU, domain: FaultDomain,
                cause: Optional[BaseException] = None) -> int:
    """Kill every kernel resident in ``domain``; returns the count.

    Queued (time-shared) kernels are spared — they had not begun
    executing, exactly like work sitting in a stream behind a killed
    context that gets resubmitted.  Each victim's ``done`` event fails
    with ``cause`` (default: a fresh :class:`GpuEccError` naming the
    kernel), which launch waiters observe; a temporal group's pump
    catches the failure and keeps draining its queue.
    """
    if domain.device is not device:
        raise ValueError(f"domain {domain.name!r} belongs to "
                         f"{domain.device.name!r}, not {device.name!r}")
    members = {g.gid for g in domain.groups}
    killed = 0
    for task in device.pool.tasks:
        client = task.meta["client"]
        if client.group.gid not in members:
            continue
        device.pool.cancel(task)
        if cause is None:
            kernel = task.meta["kernel"]
            exc: BaseException = GpuEccError(
                f"{device.name}/{domain.name}: uncorrectable memory error "
                f"killed kernel {kernel.name!r}"
            )
        else:
            exc = cause
        task.done.fail(exc)
        killed += 1
    return killed
