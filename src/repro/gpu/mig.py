"""Multi-Instance GPU (MIG) model.

MIG carves an Ampere-or-newer GPU into hardware-isolated instances chosen
from a fixed profile grid (``1g.5gb`` ... ``7g.40gb`` on an A100-40GB).
Each instance owns a compute slice (SMs), memory slices (capacity *and*
bandwidth), and is addressed by a UUID that functions receive through
``CUDA_VISIBLE_DEVICES`` (§4.2).

Faithfully modelled constraints:

- entering/leaving MIG mode and re-partitioning require a **GPU reset**
  (``spec.reset_seconds``), and all workloads on the GPU must be shut
  down first (§6: "To reallocate MIG, we must shut down all the
  applications that are running on the GPU");
- at most 7 compute slices and 8 memory slices may be allocated;
- an instance's clients can never exceed the instance's SM, bandwidth, or
  memory capacity — full isolation, unlike MPS.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.gpu.device import GpuClient, ShareGroup, SimulatedGPU
from repro.gpu.memory import MemoryPool
from repro.gpu.specs import MIGProfile

__all__ = ["MigInstance", "MigManager"]

class MigInstance:
    """One MIG instance: an isolated share group with its own memory pool."""

    def __init__(self, manager: "MigManager", profile: MIGProfile):
        self.manager = manager
        self.profile = profile
        device = manager.device
        self.uuid = f"MIG-{device.name}-{next(manager._uuid_counter):04d}"
        self.group = ShareGroup(
            name=self.uuid,
            device=device,
            sm_budget=profile.sm_count(device.spec),
            bw_cap=profile.bandwidth(device.spec),
            memory=MemoryPool(profile.memory_bytes, name=f"{self.uuid}-mem"),
            # Processes sharing one instance time-slice by default, just
            # like on a bare GPU; enable_mps() makes them concurrent.
            discipline="temporal",
        )
        device.add_group(self.group)
        self._mps_daemon = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MigInstance {self.uuid} {self.profile.name}>"

    @property
    def sm_count(self) -> int:
        return self.group.sm_budget

    @property
    def clients(self) -> tuple[GpuClient, ...]:
        return tuple(self.group.clients)

    def client(self, name: str) -> GpuClient:
        """Create a client pinned to this instance (CUDA_VISIBLE_DEVICES)."""
        if self not in self.manager.instances:
            raise RuntimeError(f"{self.uuid} has been destroyed")
        return GpuClient(self.manager.device, self.group, name)

    def enable_mps(self):
        """Run an MPS daemon *inside* this instance (nested sharing).

        Returns the daemon; its clients share the instance's slice
        spatially with per-client percentage caps of the slice's SMs.
        """
        from repro.gpu.mps import MpsControlDaemon

        if self._mps_daemon is None:
            self._mps_daemon = MpsControlDaemon(self.manager.device,
                                                group=self.group)
        if not self._mps_daemon.running:
            self._mps_daemon.start()
        return self._mps_daemon


class MigManager:
    """Per-device MIG mode controller (the ``nvidia-smi mig`` surface)."""

    def __init__(self, device: SimulatedGPU):
        if not device.spec.mig_capable:
            raise RuntimeError(f"{device.spec.name} does not support MIG")
        self.device = device
        self.enabled = False
        self.instances: list[MigInstance] = []
        # Per-manager so instance UUIDs are deterministic run to run
        # (a process-global counter would leak state across twin runs).
        self._uuid_counter = itertools.count(1)

    # -- mode toggling (generators: yield from them inside a process) ------
    def enable(self):
        """Enter MIG mode.  Requires an idle GPU; costs a full reset."""
        if self.enabled:
            raise RuntimeError(f"{self.device.name}: MIG already enabled")
        if self.device.default_group.clients:
            raise RuntimeError(
                f"{self.device.name}: cannot enable MIG while "
                f"{len(self.device.default_group.clients)} clients are active"
            )
        yield self.device.env.timeout(self.device.spec.reset_seconds)
        self.enabled = True
        # The monolithic device context disappears in MIG mode.
        self.device.default_group.sm_budget = 0

    def disable(self):
        """Leave MIG mode.  All instances must be destroyed first."""
        self._check_enabled()
        if self.instances:
            raise RuntimeError(
                f"{self.device.name}: destroy {len(self.instances)} "
                "instances before disabling MIG"
            )
        yield self.device.env.timeout(self.device.spec.reset_seconds)
        self.enabled = False
        self.device.default_group.sm_budget = self.device.spec.sms

    # -- instance lifecycle ---------------------------------------------------
    @property
    def used_compute_slices(self) -> int:
        return sum(i.profile.compute_slices for i in self.instances)

    @property
    def used_memory_slices(self) -> int:
        return sum(i.profile.memory_slices for i in self.instances)

    def create_instance(self, profile_name: str) -> MigInstance:
        """Create an instance of ``profile_name`` (e.g. ``"1g.10gb"``)."""
        self._check_enabled()
        profile = self.device.spec.profile(profile_name)
        spec = self.device.spec
        if (self.used_compute_slices + profile.compute_slices
                > spec.mig_compute_slices):
            raise RuntimeError(
                f"{self.device.name}: profile {profile_name} needs "
                f"{profile.compute_slices} compute slices, only "
                f"{spec.mig_compute_slices - self.used_compute_slices} free"
            )
        if (self.used_memory_slices + profile.memory_slices
                > spec.mig_memory_slices):
            raise RuntimeError(
                f"{self.device.name}: profile {profile_name} needs "
                f"{profile.memory_slices} memory slices, only "
                f"{spec.mig_memory_slices - self.used_memory_slices} free"
            )
        instance = MigInstance(self, profile)
        self.instances.append(instance)
        return instance

    def destroy_instance(self, instance: MigInstance) -> None:
        """Destroy an instance.  Its clients must be closed first."""
        if instance not in self.instances:
            raise RuntimeError(f"{instance.uuid}: not an instance of this GPU")
        if instance.group.clients:
            raise RuntimeError(
                f"{instance.uuid}: {len(instance.group.clients)} clients "
                "still attached; shut them down before reconfiguring MIG"
            )
        self.device.remove_group(instance.group)
        self.instances.remove(instance)

    def reconfigure(self, profile_names: Iterable[str]):
        """Tear down all instances and create a new partition (generator).

        Models §6's observation that MIG repartitioning interferes with
        everything on the GPU: every instance must be empty, and the
        operation costs a GPU reset on top of instance creation.
        """
        self._check_enabled()
        for instance in self.instances:
            if instance.group.clients:
                raise RuntimeError(
                    f"{self.device.name}: client(s) still running on "
                    f"{instance.uuid}; MIG reconfiguration requires shutting "
                    "down all applications on the GPU"
                )
        for instance in list(self.instances):
            self.destroy_instance(instance)
        yield self.device.env.timeout(self.device.spec.reset_seconds)
        return [self.create_instance(p) for p in profile_names]

    def lookup(self, uuid: str) -> MigInstance:
        """Resolve a MIG UUID (as passed via CUDA_VISIBLE_DEVICES)."""
        for instance in self.instances:
            if instance.uuid == uuid:
                return instance
        raise KeyError(f"no MIG instance {uuid!r} on {self.device.name}")

    def _check_enabled(self) -> None:
        if not self.enabled:
            raise RuntimeError(
                f"{self.device.name}: MIG mode is not enabled "
                "(yield from manager.enable() first)"
            )
