"""AMD compute-unit (CU) masking — Table 1's MPS-percentage equivalent.

ROCm lets a process restrict itself to an explicit bitmask of compute
units (``ROC_GLOBAL_CU_MASK`` / ``hipExtStreamCreateWithCUMask``).
Semantically it is the AMD counterpart of ``CUDA_MPS_ACTIVE_THREAD_
PERCENTAGE`` — a per-process compute cap with no memory isolation — but
the interface is a *mask*, so specific CUs are named and two processes
can deliberately overlap or avoid each other's CUs.

Model: a client's cap is the popcount of its mask; disjointness is
tracked so schedulers can reason about interference.  AMD's default
multiplexing runs kernels concurrently (Table 1: "Default multiplexing
method in AMD ROCm"), so clients are spatial like MPS clients.
"""

from __future__ import annotations

from repro.gpu.device import GpuClient, SimulatedGPU

__all__ = ["CuMaskManager", "parse_mask"]


def parse_mask(mask: int, n_cus: int) -> list[int]:
    """The CU indices selected by ``mask`` (validated against the device)."""
    if mask <= 0:
        raise ValueError("CU mask must select at least one CU")
    if mask >= (1 << n_cus):
        raise ValueError(
            f"mask selects CUs beyond the device's {n_cus} compute units"
        )
    return [i for i in range(n_cus) if mask & (1 << i)]


class CuMaskManager:
    """Per-device CU-mask multiplexing (ROCm-style)."""

    def __init__(self, device: SimulatedGPU):
        if device.spec.mig_capable:
            # Real systems don't forbid this, but in this reproduction
            # CU masking marks the AMD path; keep the modes distinct.
            raise ValueError(
                f"{device.spec.name} is an NVIDIA part; use MPS/MIG "
                "(CU masking models the AMD equivalent)"
            )
        self.device = device
        # ROCm runs kernels from different processes concurrently by
        # default — flip the device's default group to spatial.
        if device.default_group.clients:
            raise RuntimeError(
                f"{device.name}: cannot enable CU masking with active "
                "clients"
            )
        device.default_group.discipline = "spatial"
        self._masks: dict[int, int] = {}

    def client(self, name: str, cu_mask: int) -> GpuClient:
        """Create a client limited to the CUs selected by ``cu_mask``."""
        cus = parse_mask(cu_mask, self.device.spec.sms)
        client = GpuClient(self.device, self.device.default_group, name,
                           sm_cap=len(cus))
        self._masks[client.cid] = cu_mask
        return client

    def equal_masks(self, n: int) -> list[int]:
        """Disjoint masks splitting the device's CUs evenly among ``n``."""
        if n <= 0:
            raise ValueError("n must be positive")
        total = self.device.spec.sms
        if n > total:
            raise ValueError(f"cannot split {total} CUs {n} ways")
        per = total // n
        masks = []
        for i in range(n):
            lo = i * per
            hi = (i + 1) * per if i < n - 1 else total
            masks.append(((1 << (hi - lo)) - 1) << lo)
        return masks

    def mask_of(self, client: GpuClient) -> int:
        try:
            return self._masks[client.cid]
        except KeyError:
            raise KeyError(f"{client.name!r} is not a CU-masked client") \
                from None

    def overlapping(self, a: GpuClient, b: GpuClient) -> bool:
        """Whether two clients' masks contend for the same CUs."""
        return bool(self.mask_of(a) & self.mask_of(b))
