"""CUDA Multi-Process Service (MPS) model.

Mirrors ``nvidia-cuda-mps-control`` semantics as the paper uses them:

- The daemon must be running on the node before any GPU function starts
  (§4.1: "We need to make sure that nvidia-cuda-mps-control is launched in
  the compute node before any function with GPU code runs").
- While the daemon runs, client kernels execute *concurrently* (spatial
  sharing) instead of the default time-slicing.
- ``CUDA_MPS_ACTIVE_THREAD_PERCENTAGE`` caps the SMs a client may occupy;
  it is read once at process start, so *changing a client's percentage
  requires restarting the client process* (§6) — enforced here by making
  the cap immutable on a live client.
- MPS does **not** partition memory or memory bandwidth (Table 1: "No
  memory isolation"), so clients water-fill the full device bandwidth.
"""

from __future__ import annotations

from repro.gpu.device import GpuClient, SimulatedGPU

__all__ = ["MpsControlDaemon"]


class MpsControlDaemon:
    """An MPS control daemon for one GPU — or one MIG instance.

    Real deployments can run ``nvidia-cuda-mps-control`` *inside* a MIG
    instance, nesting percentage-capped clients within a hardware slice;
    pass the instance's share group as ``group`` to model that (see
    :meth:`repro.gpu.mig.MigInstance.enable_mps`).
    """

    def __init__(self, device: SimulatedGPU, group=None):
        self.device = device
        self.group = group if group is not None else device.default_group
        if self.group.device is not device:
            raise ValueError("group belongs to a different device")
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Switch the scope from time-slicing to concurrent execution.

        Fails if clients already hold contexts in the scope — just like
        the real daemon refuses to adopt live CUDA contexts.
        """
        if self._running:
            raise RuntimeError(f"MPS daemon already running on {self.group.name}")
        if self.group.clients:
            raise RuntimeError(
                f"{self.group.name}: cannot start MPS with "
                f"{len(self.group.clients)} active time-shared clients"
            )
        self.group.discipline = "spatial"
        self._running = True

    def stop(self) -> None:
        """Stop the daemon, restoring default time-slicing."""
        if not self._running:
            raise RuntimeError(f"MPS daemon not running on {self.group.name}")
        if self.group.clients:
            raise RuntimeError(
                f"{self.group.name}: cannot stop MPS with "
                f"{len(self.group.clients)} active MPS clients"
            )
        self.group.discipline = "temporal"
        self._running = False

    def client(self, name: str,
               active_thread_percentage: int = 100) -> GpuClient:
        """Create an MPS client process.

        ``active_thread_percentage`` maps to
        ``CUDA_MPS_ACTIVE_THREAD_PERCENTAGE``: the client may occupy at
        most ``pct%`` of the scope's SMs — the whole device (e.g. 50% of
        an A100 = 54 of 108 SMs, the example in §4.1), or the MIG
        instance's slice when nested.  The cap is fixed for the client's
        lifetime; re-partitioning means closing the client and creating a
        new one (the restart cost is modelled by the FaaS cold-start
        machinery, :mod:`repro.faas.coldstart`).
        """
        if not self._running:
            raise RuntimeError(
                f"{self.group.name}: MPS daemon must be started before "
                "creating MPS clients"
            )
        if not 0 < active_thread_percentage <= 100:
            raise ValueError(
                "active_thread_percentage must be an integer in (0, 100]"
            )
        sm_cap = max(1, round(self.group.sm_budget
                              * active_thread_percentage / 100.0))
        return GpuClient(self.device, self.group, name, sm_cap=sm_cap)
