"""HBM capacity accounting with OOM semantics.

The evaluation's four-concurrent-LLaMa limit ("due to memory constraints,
we could fit only four concurrent instances ... in an 80 GB A100") comes
straight from this allocator: admission fails with
:class:`GpuOutOfMemory` when a client's working set does not fit in the
device (or MIG-instance / vGPU-slice) pool.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["GpuOutOfMemory", "MemoryPool"]


class GpuOutOfMemory(RuntimeError):
    """Raised when an allocation exceeds the pool's free capacity."""

    def __init__(self, pool: "MemoryPool", requested: float):
        self.pool = pool
        self.requested = requested
        super().__init__(
            f"{pool.name}: cannot allocate {requested / 1e9:.2f} GB "
            f"({pool.free / 1e9:.2f} GB free of {pool.capacity / 1e9:.2f} GB)"
        )


class MemoryPool:
    """A named pool of device memory with per-owner accounting."""

    def __init__(self, capacity: float, name: str = "hbm"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        self.name = name
        self._allocations: Dict[str, float] = {}

    @property
    def used(self) -> float:
        return sum(self._allocations.values())

    @property
    def free(self) -> float:
        return self.capacity - self.used

    def owners(self) -> tuple[str, ...]:
        return tuple(self._allocations)

    def usage_of(self, owner: str) -> float:
        return self._allocations.get(owner, 0.0)

    def allocate(self, owner: str, nbytes: float) -> None:
        """Reserve ``nbytes`` for ``owner``; raises :class:`GpuOutOfMemory`."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if nbytes > self.free + 1e-6:
            raise GpuOutOfMemory(self, nbytes)
        self._allocations[owner] = self._allocations.get(owner, 0.0) + nbytes

    def release(self, owner: str, nbytes: float | None = None) -> float:
        """Free ``nbytes`` (or everything) held by ``owner``; returns freed."""
        held = self._allocations.get(owner, 0.0)
        if nbytes is None:
            nbytes = held
        if nbytes < 0:
            raise ValueError("release size must be non-negative")
        if nbytes > held + 1e-6:
            raise ValueError(
                f"{self.name}: owner {owner!r} holds {held / 1e9:.2f} GB, "
                f"cannot release {nbytes / 1e9:.2f} GB"
            )
        remaining = held - nbytes
        if remaining <= 1e-6:
            self._allocations.pop(owner, None)
            return held
        self._allocations[owner] = remaining
        return nbytes

    def fits(self, nbytes: float) -> bool:
        """Whether an allocation of ``nbytes`` would currently succeed."""
        return nbytes <= self.free + 1e-6
