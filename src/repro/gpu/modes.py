"""Multiplexing technique taxonomy — the static half of Table 1.

The measured half (utilization under a reference workload) is produced by
``benchmarks/test_table1_modes.py``; this module records the qualitative
columns so the bench can print the full table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["MultiplexMode", "ModeCapabilities", "mode_capabilities"]


class MultiplexMode(enum.Enum):
    """The five techniques compared in Table 1."""

    TIME_SHARING = "time-sharing"
    MPS_DEFAULT = "mps-default"
    MPS_PERCENTAGE = "mps-percentage"
    MIG = "mig"
    VGPU = "vgpu"


@dataclass(frozen=True)
class ModeCapabilities:
    """Qualitative attributes of one multiplexing technique."""

    mode: MultiplexMode
    description: str
    utilization_class: str
    amd_equivalent: str
    reconfiguration: str
    software_required: str
    drawbacks: str
    #: Spatial sharing (concurrent kernels from different clients)?
    spatial: bool
    #: Hardware memory-capacity + bandwidth isolation between clients?
    memory_isolation: bool
    #: Can a client's share change without restarting the client process?
    live_reconfigurable: bool


_CAPABILITIES: dict[MultiplexMode, ModeCapabilities] = {
    MultiplexMode.TIME_SHARING: ModeCapabilities(
        mode=MultiplexMode.TIME_SHARING,
        description="Every kernel gets exclusive access to the GPU for a time",
        utilization_class="Low",
        amd_equivalent="None",
        reconfiguration="No",
        software_required="None",
        drawbacks="Low hardware utilization when an application cannot "
                  "saturate the GPU",
        spatial=False,
        memory_isolation=False,
        live_reconfigurable=True,  # nothing to reconfigure
    ),
    MultiplexMode.MPS_DEFAULT: ModeCapabilities(
        mode=MultiplexMode.MPS_DEFAULT,
        description="Kernels from different applications run concurrently "
                    "when possible",
        utilization_class="Highest",
        amd_equivalent="Default multiplexing method in AMD ROCm",
        reconfiguration="No",
        software_required="nvidia-cuda-mps-control",
        drawbacks="Some applications can be resource starved due to "
                  "contention",
        spatial=True,
        memory_isolation=False,
        live_reconfigurable=True,
    ),
    MultiplexMode.MPS_PERCENTAGE: ModeCapabilities(
        mode=MultiplexMode.MPS_PERCENTAGE,
        description="Applications are restricted to the maximum number of "
                    "SMs they can utilize",
        utilization_class="High",
        amd_equivalent="Compute unit (CU) masking",
        reconfiguration="App process restart to reconfigure GPU resources",
        software_required="nvidia-cuda-mps-control",
        drawbacks="Application restart for GPU resource reallocation; "
                  "no memory isolation",
        spatial=True,
        memory_isolation=False,
        live_reconfigurable=False,
    ),
    MultiplexMode.MIG: ModeCapabilities(
        mode=MultiplexMode.MIG,
        description="GPU divided into multiple smaller instances with "
                    "compute and memory isolation",
        utilization_class="High (lower than CUDA MPS)",
        amd_equivalent="None",
        reconfiguration="Requires GPU reset",
        software_required="nvidia-smi",
        drawbacks="Requires GPU reset and application restart to change "
                  "resource allocation",
        spatial=True,
        memory_isolation=True,
        live_reconfigurable=False,
    ),
    MultiplexMode.VGPU: ModeCapabilities(
        mode=MultiplexMode.VGPU,
        description="Designed for sharing GPU via VMs",
        utilization_class="High (multiplexes at VM level rather than "
                          "process level)",
        amd_equivalent="MxGPU",
        reconfiguration="Requires restarting a VM",
        software_required="NVIDIA vGPU driver",
        drawbacks="Homogeneous resource division; requires proprietary "
                  "drivers",
        spatial=False,  # VM-level time slicing
        memory_isolation=True,
        live_reconfigurable=False,
    ),
}


def mode_capabilities(mode: MultiplexMode) -> ModeCapabilities:
    """Return the Table 1 attribute row for ``mode``."""
    return _CAPABILITIES[mode]
